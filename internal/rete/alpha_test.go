package rete

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pdps/internal/match"
	"pdps/internal/wm"
)

// assertAlphaConsistent checks the discrimination network's structural
// invariants against the alpha-memory registries:
//
//   - alphaByKey and alphaByClass describe the same memory set, and no
//     registered memory is successor-less (maybeGCAlpha missed it);
//   - on alpha-indexed networks every memory holds a discrimination
//     path whose terminal node carries it, every node's ref count
//     equals the number of registered paths through it, and the trees
//     contain no nodes beyond those paths (no GC leaks), no empty
//     buckets or attribute roots, and no unpruned empty levels;
//   - each level's eqAttrs is sorted and mirrors its eqRoots keys, so
//     routing stays deterministic.
func assertAlphaConsistent(t *testing.T, n *Network) {
	t.Helper()
	byClass := 0
	for class, list := range n.alphaByClass {
		if len(list) == 0 {
			t.Errorf("alphaByClass[%s] is registered but empty", class)
		}
		for _, am := range list {
			byClass++
			if n.alphaByKey[am.key] != am {
				t.Errorf("alpha %s in alphaByClass but not alphaByKey", am.key)
			}
		}
	}
	if byClass != len(n.alphaByKey) {
		t.Errorf("alphaByClass holds %d mems, alphaByKey %d", byClass, len(n.alphaByKey))
	}
	for key, am := range n.alphaByKey {
		if len(am.successors) == 0 {
			t.Errorf("alpha %s has no successors; maybeGCAlpha should have collected it", key)
		}
	}

	if !n.alphaIndexing {
		if len(n.disc) != 0 {
			t.Errorf("non-indexing network holds %d discrimination trees", len(n.disc))
		}
		return
	}

	// Recompute every node's expected ref count from the registered
	// paths, then demand the trees agree exactly.
	nodeRefs := map[*alphaNode]int{}
	rootRefs := map[string]int{}
	erRefs := map[*eqRoot]int{}
	for key, am := range n.alphaByKey {
		if am.disc == nil {
			t.Errorf("alpha %s has no discrimination path", key)
			continue
		}
		if am.disc.class != am.class {
			t.Errorf("alpha %s path class %s != %s", key, am.disc.class, am.class)
		}
		steps := am.disc.steps
		if term := steps[len(steps)-1].node; term.mem != am {
			t.Errorf("alpha %s terminal node does not carry it", key)
		}
		rootRefs[am.class]++
		for i, st := range steps {
			if i == 0 {
				if d := n.disc[am.class]; d == nil || d.root != st.node {
					t.Errorf("alpha %s path does not start at its class root", key)
				}
				continue
			}
			nodeRefs[st.node]++
			if st.attr != "" {
				er := st.level.eqRoots[st.attr]
				if er == nil || er.buckets[st.bucket] != st.node {
					t.Errorf("alpha %s step %d not reachable via %s bucket", key, i, st.attr)
					continue
				}
				erRefs[er]++
			} else {
				found := false
				for _, c := range st.level.rest {
					if c == st.node {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("alpha %s step %d not in its level's residual list", key, i)
				}
			}
		}
	}

	seen := 0
	for class, d := range n.disc {
		if d.root.refs != rootRefs[class] {
			t.Errorf("class %s root refs=%d, %d patterns registered", class, d.root.refs, rootRefs[class])
		}
		if rootRefs[class] == 0 {
			t.Errorf("class %s tree has no registered patterns; should have been deleted", class)
		}
		var walkLevels func(where string, lv *discLevel)
		walkLevels = func(where string, lv *discLevel) {
			if lv == nil {
				return
			}
			if len(lv.eqRoots) == 0 && len(lv.rest) == 0 {
				t.Errorf("%s: empty level not pruned", where)
			}
			if !sort.StringsAreSorted(lv.eqAttrs) {
				t.Errorf("%s: eqAttrs not sorted: %v", where, lv.eqAttrs)
			}
			if len(lv.eqAttrs) != len(lv.eqRoots) {
				t.Errorf("%s: eqAttrs has %d entries, eqRoots %d", where, len(lv.eqAttrs), len(lv.eqRoots))
			}
			for _, attr := range lv.eqAttrs {
				er := lv.eqRoots[attr]
				if er == nil {
					t.Errorf("%s: eqAttrs lists %s but eqRoots lacks it", where, attr)
					continue
				}
				if er.refs != erRefs[er] {
					t.Errorf("%s/%s: eqRoot refs=%d, %d paths route through it", where, attr, er.refs, erRefs[er])
				}
				if len(er.buckets) == 0 {
					t.Errorf("%s/%s: empty attribute root not pruned", where, attr)
				}
				for key, b := range er.buckets {
					seen++
					if b.refs != nodeRefs[b] {
						t.Errorf("%s/%s[%q]: refs=%d, %d paths through it", where, attr, key, b.refs, nodeRefs[b])
					}
					walkLevels(fmt.Sprintf("%s/%s[%q]", where, attr, key), b.kids)
				}
			}
			for i, c := range lv.rest {
				seen++
				if c.refs != nodeRefs[c] {
					t.Errorf("%s/rest[%d]: refs=%d, %d paths through it", where, i, c.refs, nodeRefs[c])
				}
				walkLevels(fmt.Sprintf("%s/rest[%d]", where, i), c.kids)
			}
		}
		walkLevels("class "+class, d.root.kids)
	}
	if seen != len(nodeRefs) {
		t.Errorf("trees hold %d nodes, registered paths cover %d — orphaned nodes leak", seen, len(nodeRefs))
	}
}

// TestAlphaDiscSharing checks the cross-rule factoring the tree is
// for: the fanout rule set's overlapping constant tests collapse onto
// shared hash buckets, and the structure stays consistent through
// assert/retract churn.
func TestAlphaDiscSharing(t *testing.T) {
	n := New()
	for _, r := range fanoutRules(48) {
		if err := n.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	assertAlphaConsistent(t, n)
	top := n.Topology()
	if top.AlphaMems != 48 {
		t.Fatalf("AlphaMems=%d, want 48 distinct patterns", top.AlphaMems)
	}
	if top.SharedAlphaNodes == 0 {
		t.Fatal("no shared discrimination nodes despite 48 overlapping rules")
	}
	if top.AlphaRoutedAttrs == 0 {
		t.Fatal("no hash-routed attributes for all-equality patterns")
	}
	// 48 rules × 3 tests each collapse far below 144 nodes.
	if top.AlphaDiscNodes >= 144 {
		t.Fatalf("AlphaDiscNodes=%d, want structural sharing below 144", top.AlphaDiscNodes)
	}
	s := wm.NewStore()
	var ws []*wm.WME
	for i := 0; i < 64; i++ {
		r := i % 48
		w := s.Insert("event", map[string]wm.Value{
			"cat": wm.Int(int64(r % 16)), "pri": wm.Int(int64(r / 16)), "live": wm.Bool(i%2 == 0)})
		ws = append(ws, w)
		n.Insert(w)
	}
	if n.ConflictSet().Len() == 0 {
		t.Fatal("no events matched")
	}
	for _, w := range ws {
		n.Remove(w)
	}
	if got := n.ConflictSet().Len(); got != 0 {
		t.Fatalf("drained: %d instantiations", got)
	}
	assertDrained(t, n)
}

// TestRemoveRuleAlphaGC removes rules one batch at a time and checks
// the alpha structures shrink with them: memories leave the
// registries, their discrimination paths are ref-counted away, and an
// emptied class tree disappears. Re-adding a rule against a populated
// working memory must then rebuild and back-fill its pattern.
func TestRemoveRuleAlphaGC(t *testing.T) {
	n := New()
	rules := fanoutRules(48)
	for _, r := range rules {
		if err := n.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	nodesAll := n.Topology().AlphaDiscNodes

	if err := n.RemoveRule("no-such-rule"); err == nil {
		t.Fatal("RemoveRule of unknown rule did not fail")
	}
	for _, r := range rules[24:] {
		if err := n.RemoveRule(r.Name); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.Stats().AlphaMems; got != 24 {
		t.Fatalf("AlphaMems=%d after removing half the rules, want 24", got)
	}
	if got := n.Topology().AlphaDiscNodes; got >= nodesAll {
		t.Fatalf("AlphaDiscNodes=%d did not shrink from %d", got, nodesAll)
	}
	assertAlphaConsistent(t, n)

	// The survivors must still match, and removed rules must not.
	s := wm.NewStore()
	hot := func(r int) *wm.WME {
		return s.Insert("event", map[string]wm.Value{
			"cat": wm.Int(int64(r % 16)), "pri": wm.Int(int64(r / 16)), "live": wm.Bool(true)})
	}
	w5, w40 := hot(5), hot(40)
	n.Insert(w5)
	n.Insert(w40)
	if got := n.ConflictSet().Len(); got != 1 {
		t.Fatalf("got %d instantiations, want 1 (rule fan40 was removed)", got)
	}

	// Re-add a removed rule against the populated store: the rebuilt
	// alpha memory must back-fill and match the resident WME.
	if err := n.AddRule(rules[40]); err != nil {
		t.Fatal(err)
	}
	if got := n.ConflictSet().Len(); got != 2 {
		t.Fatalf("after re-add: %d instantiations, want 2", got)
	}
	assertAlphaConsistent(t, n)

	n.Remove(w5)
	n.Remove(w40)
	for _, r := range rules[:24] {
		if err := n.RemoveRule(r.Name); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.RemoveRule(rules[40].Name); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().AlphaMems; got != 0 {
		t.Fatalf("AlphaMems=%d after removing every rule, want 0", got)
	}
	if len(n.disc) != 0 {
		t.Fatalf("%d class trees survive an empty rule set", len(n.disc))
	}
	assertDrained(t, n)
}

// TestRemoveRuleUnderBetaSharing pins the sharing boundary: two rules
// share both a beta prefix and the alpha memories under it, so
// removing one must keep every shared alpha memory alive for the
// survivor and collect only the removed rule's private pattern.
func TestRemoveRuleUnderBetaSharing(t *testing.T) {
	mk := func(name, lastClass string) *match.Rule {
		return &match.Rule{
			Name: name,
			Conditions: []match.Condition{
				{Class: "c0", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: "c1", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: lastClass, Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
			},
			Actions: []match.Action{{Kind: match.ActHalt}},
		}
	}
	n := New()
	if err := n.AddRule(mk("r1", "c2")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddRule(mk("r2", "c3")); err != nil {
		t.Fatal(err)
	}
	s := wm.NewStore()
	var ws []*wm.WME
	for _, cls := range []string{"c0", "c1", "c2", "c3"} {
		w := s.Insert(cls, map[string]wm.Value{"k": wm.Int(1)})
		ws = append(ws, w)
		n.Insert(w)
	}
	if got := n.ConflictSet().Len(); got != 2 {
		t.Fatalf("got %d instantiations, want 2", got)
	}

	if err := n.RemoveRule("r1"); err != nil {
		t.Fatal(err)
	}
	// c0, c1 stay (r2 uses them); c2's memory must be collected.
	if got := n.Stats().AlphaMems; got != 3 {
		t.Fatalf("AlphaMems=%d after removing r1, want 3", got)
	}
	for key := range n.alphaByKey {
		if n.alphaByKey[key].class == "c2" {
			t.Fatalf("alpha %s survives though only r1 used it", key)
		}
	}
	assertAlphaConsistent(t, n)
	if got := n.ConflictSet().Len(); got != 1 {
		t.Fatalf("got %d instantiations after removing r1, want 1", got)
	}
	// The collected pattern must not resurrect on later asserts.
	w := s.Insert("c2", map[string]wm.Value{"k": wm.Int(1)})
	n.Insert(w)
	if got := n.ConflictSet().Len(); got != 1 {
		t.Fatalf("removed rule's pattern still matches: %d instantiations", got)
	}
	n.Remove(w)

	if err := n.RemoveRule("r2"); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().AlphaMems; got != 0 {
		t.Fatalf("AlphaMems=%d after removing both rules, want 0", got)
	}
	for _, w := range ws {
		n.Remove(w)
	}
	assertDrained(t, n)
}

// TestRuleChurnOracle drives random add-rule / remove-rule / WME churn
// against a naive matcher rebuilt from the live rule set at every
// step: alpha GC and back-fill under sharing must never change what
// matches. Runs over every alpha-capable network variant, so the
// linear walk and the aggressively replanning network (whose chain
// swaps recompile patterns mid-run) face the same oracle.
func TestRuleChurnOracle(t *testing.T) {
	variants := []struct {
		name  string
		build func() *Network
	}{
		{"planned", New},
		{"linear", NewLinear},
		{"adaptive", newAggressiveAdaptive},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				rng := rand.New(rand.NewSource(seed))
				s := wm.NewStore()
				n := v.build()
				live := map[string]*match.Rule{}
				var wmes []*wm.WME
				next := 0
				for step := 0; step < 80; step++ {
					switch op := rng.Intn(6); {
					case op == 0 || len(live) == 0:
						r := randomRule(rng, fmt.Sprintf("r%d", next))
						next++
						live[r.Name] = r
						if err := n.AddRule(r); err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
					case op == 1 && len(live) > 1:
						names := make([]string, 0, len(live))
						for name := range live {
							names = append(names, name)
						}
						sort.Strings(names)
						name := names[rng.Intn(len(names))]
						delete(live, name)
						if err := n.RemoveRule(name); err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
					case op >= 2 && op <= 4 || len(wmes) == 0:
						w := randomWME(rng, s)
						wmes = append(wmes, w)
						n.Insert(w)
					default:
						i := rng.Intn(len(wmes))
						w := wmes[i]
						wmes = append(wmes[:i], wmes[i+1:]...)
						n.Remove(w)
					}
					naive := match.NewNaive()
					for _, name := range sortedKeys(live) {
						if err := naive.AddRule(live[name]); err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
					}
					for _, w := range wmes {
						naive.Insert(w)
					}
					sameConflictSets(t, seed, n.ConflictSet(), naive.ConflictSet())
					assertAlphaConsistent(t, n)
				}
				for _, w := range wmes {
					n.Remove(w)
				}
				assertDrained(t, n)
			}
		})
	}
}

func sortedKeys(m map[string]*match.Rule) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestReplanAlphaGC is the leak regression the GC exists for: live
// replanning reorders condition elements, which re-classifies their
// tests (a join test can become an intra-element test and vice versa)
// and so compiles fresh alpha patterns for the same rule. Without GC
// every replan would strand the previous patterns in the registries
// and the assert path would slow down forever.
func TestReplanAlphaGC(t *testing.T) {
	n := newAggressiveAdaptive()
	mk := func(name, lastClass string) *match.Rule {
		return &match.Rule{
			Name: name,
			Conditions: []match.Condition{
				{Class: "c0", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: "c1", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: lastClass, Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: "gate", Negated: true, Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
			},
			Actions: []match.Action{{Kind: match.ActHalt}},
		}
	}
	if err := n.AddRule(mk("r1", "c2")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddRule(mk("r2", "c3")); err != nil {
		t.Fatal(err)
	}
	s := wm.NewStore()
	var ws []*wm.WME
	classes := []string{"c0", "c1", "c2", "c3", "gate"}
	for round := 0; round < 6; round++ {
		for i, cls := range classes {
			copies := 1 + (round+i)%3
			for c := 0; c < copies; c++ {
				w := s.Insert(cls, map[string]wm.Value{"k": wm.Int(int64(c % 2))})
				ws = append(ws, w)
				n.Insert(w)
			}
		}
		n.ConflictSet()
		assertAlphaConsistent(t, n)
		cut := len(ws) / 3
		for _, w := range ws[:cut] {
			n.Remove(w)
		}
		ws = append([]*wm.WME(nil), ws[cut:]...)
		n.ConflictSet()
		assertAlphaConsistent(t, n)
	}
	if n.Replans() == 0 {
		t.Fatal("churn never triggered a replan")
	}
	// Two 4-CE rules can never legitimately need more than 8 alpha
	// patterns; without GC the replan churn above leaves dozens.
	if got := n.Stats().AlphaMems; got > 8 {
		t.Fatalf("AlphaMems=%d after replan churn, want <= 8 (alpha GC leak)", got)
	}
	for _, w := range ws {
		n.Remove(w)
	}
	assertDrained(t, n)
}
