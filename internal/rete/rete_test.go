package rete

import (
	"testing"

	"pdps/internal/match"
	"pdps/internal/wm"
)

func attrs(kv ...interface{}) map[string]wm.Value {
	m := make(map[string]wm.Value)
	for i := 0; i < len(kv); i += 2 {
		k := kv[i].(string)
		switch v := kv[i+1].(type) {
		case int:
			m[k] = wm.Int(int64(v))
		case string:
			m[k] = wm.Sym(v)
		case bool:
			m[k] = wm.Bool(v)
		case wm.Value:
			m[k] = v
		default:
			panic("bad attr value")
		}
	}
	return m
}

func joinRule() *match.Rule {
	return &match.Rule{
		Name: "pass",
		Conditions: []match.Condition{
			{Class: "part", Tests: []match.AttrTest{
				{Attr: "id", Op: match.OpEq, Var: "x"},
				{Attr: "status", Op: match.OpEq, Const: wm.Sym("ready")},
			}},
			{Class: "machine", Tests: []match.AttrTest{
				{Attr: "accepts", Op: match.OpEq, Var: "x"},
				{Attr: "free", Op: match.OpEq, Const: wm.Bool(true)},
			}},
		},
		Actions: []match.Action{{Kind: match.ActModify, CE: 0,
			Assigns: []match.AttrAssign{{Attr: "status", Expr: match.ConstExpr{Val: wm.Sym("done")}}}}},
	}
}

func TestReteBasicJoin(t *testing.T) {
	s := wm.NewStore()
	n := New()
	if err := n.AddRule(joinRule()); err != nil {
		t.Fatal(err)
	}
	p1 := s.Insert("part", attrs("id", 1, "status", "ready"))
	m1 := s.Insert("machine", attrs("accepts", 1, "free", true))
	m2 := s.Insert("machine", attrs("accepts", 2, "free", true))
	n.Insert(p1)
	n.Insert(m1)
	n.Insert(m2)

	cs := n.ConflictSet()
	if cs.Len() != 1 {
		t.Fatalf("conflict set = %d, want 1: %v", cs.Len(), cs.All())
	}
	in := cs.All()[0]
	if in.WMEs[0] != p1 || in.WMEs[1] != m1 {
		t.Fatalf("wrong match: %v", in)
	}
	if !in.Bindings["x"].Equal(wm.Int(1)) {
		t.Fatalf("binding x = %v", in.Bindings["x"])
	}
}

func TestReteRemovalRetractsInstantiations(t *testing.T) {
	s := wm.NewStore()
	n := New()
	if err := n.AddRule(joinRule()); err != nil {
		t.Fatal(err)
	}
	p := s.Insert("part", attrs("id", 1, "status", "ready"))
	m := s.Insert("machine", attrs("accepts", 1, "free", true))
	n.Insert(p)
	n.Insert(m)
	if n.ConflictSet().Len() != 1 {
		t.Fatal("setup failed")
	}
	n.Remove(p)
	if n.ConflictSet().Len() != 0 {
		t.Fatal("removal of part did not retract instantiation")
	}
	n.Insert(p)
	if n.ConflictSet().Len() != 1 {
		t.Fatal("re-insert did not restore instantiation")
	}
	n.Remove(m)
	if n.ConflictSet().Len() != 0 {
		t.Fatal("removal of machine did not retract instantiation")
	}
}

func TestReteNegativeNode(t *testing.T) {
	r := &match.Rule{
		Name: "ship",
		Conditions: []match.Condition{
			{Class: "part", Tests: []match.AttrTest{{Attr: "id", Op: match.OpEq, Var: "x"}}},
			{Class: "defect", Negated: true, Tests: []match.AttrTest{{Attr: "part", Op: match.OpEq, Var: "x"}}},
		},
		Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
	}
	s := wm.NewStore()
	n := New()
	if err := n.AddRule(r); err != nil {
		t.Fatal(err)
	}
	p1 := s.Insert("part", attrs("id", 1))
	n.Insert(p1)
	if n.ConflictSet().Len() != 1 {
		t.Fatal("part without defect should match")
	}
	d := s.Insert("defect", attrs("part", 1))
	n.Insert(d)
	if n.ConflictSet().Len() != 0 {
		t.Fatal("defect arrival must retract the match")
	}
	n.Remove(d)
	if n.ConflictSet().Len() != 1 {
		t.Fatal("defect removal must restore the match")
	}
	// An unrelated defect must not block.
	d2 := s.Insert("defect", attrs("part", 2))
	n.Insert(d2)
	if n.ConflictSet().Len() != 1 {
		t.Fatal("unrelated defect must not retract")
	}
}

func TestReteNegativeLast_WMEBeforeRule(t *testing.T) {
	// Rule added after working memory is populated: seeding must work
	// through negative nodes too.
	r := &match.Rule{
		Name: "lone",
		Conditions: []match.Condition{
			{Class: "a", Tests: []match.AttrTest{{Attr: "v", Op: match.OpEq, Var: "x"}}},
			{Class: "b", Negated: true, Tests: []match.AttrTest{{Attr: "v", Op: match.OpEq, Var: "x"}}},
		},
		Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
	}
	s := wm.NewStore()
	n := New()
	n.Insert(s.Insert("a", attrs("v", 1)))
	n.Insert(s.Insert("a", attrs("v", 2)))
	n.Insert(s.Insert("b", attrs("v", 2)))
	if err := n.AddRule(r); err != nil {
		t.Fatal(err)
	}
	cs := n.ConflictSet()
	if cs.Len() != 1 {
		t.Fatalf("late rule: conflict set = %d, want 1", cs.Len())
	}
	if !cs.All()[0].Bindings["x"].Equal(wm.Int(1)) {
		t.Fatalf("wrong instantiation %v", cs.All()[0])
	}
}

func TestReteNegativeFirstCE(t *testing.T) {
	r := &match.Rule{
		Name: "boot",
		Conditions: []match.Condition{
			{Class: "started", Negated: true},
			{Class: "config"},
		},
		Actions: []match.Action{{Kind: match.ActMake, Class: "started"}},
	}
	s := wm.NewStore()
	n := New()
	if err := n.AddRule(r); err != nil {
		t.Fatal(err)
	}
	c := s.Insert("config", attrs("v", 1))
	n.Insert(c)
	if n.ConflictSet().Len() != 1 {
		t.Fatal("negated-first rule should match")
	}
	st := s.Insert("started", nil)
	n.Insert(st)
	if n.ConflictSet().Len() != 0 {
		t.Fatal("started WME must retract the match")
	}
}

func TestReteIntraCETest(t *testing.T) {
	// (edge ^from <x> ^to <x>) — self loops.
	r := &match.Rule{
		Name: "selfloop",
		Conditions: []match.Condition{
			{Class: "edge", Tests: []match.AttrTest{
				{Attr: "from", Op: match.OpEq, Var: "x"},
				{Attr: "to", Op: match.OpEq, Var: "x"},
			}},
		},
		Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
	}
	s := wm.NewStore()
	n := New()
	if err := n.AddRule(r); err != nil {
		t.Fatal(err)
	}
	n.Insert(s.Insert("edge", attrs("from", 1, "to", 2)))
	n.Insert(s.Insert("edge", attrs("from", 3, "to", 3)))
	cs := n.ConflictSet()
	if cs.Len() != 1 || !cs.All()[0].Bindings["x"].Equal(wm.Int(3)) {
		t.Fatalf("intra-CE test failed: %v", cs.All())
	}
}

func TestReteNonEqJoinTest(t *testing.T) {
	// (a ^v <x>) (b ^v > <x>)
	r := &match.Rule{
		Name: "gt",
		Conditions: []match.Condition{
			{Class: "a", Tests: []match.AttrTest{{Attr: "v", Op: match.OpEq, Var: "x"}}},
			{Class: "b", Tests: []match.AttrTest{{Attr: "v", Op: match.OpGt, Var: "x"}}},
		},
		Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
	}
	s := wm.NewStore()
	n := New()
	if err := n.AddRule(r); err != nil {
		t.Fatal(err)
	}
	n.Insert(s.Insert("a", attrs("v", 5)))
	n.Insert(s.Insert("b", attrs("v", 3)))
	n.Insert(s.Insert("b", attrs("v", 7)))
	cs := n.ConflictSet()
	if cs.Len() != 1 {
		t.Fatalf("gt join: %d matches, want 1", cs.Len())
	}
	if got := cs.All()[0].WMEs[1].Attr("v"); !got.Equal(wm.Int(7)) {
		t.Fatalf("matched b.v = %v, want 7", got)
	}
}

func TestReteThreeWayJoinAndSharing(t *testing.T) {
	mk := func(name string) *match.Rule {
		return &match.Rule{
			Name: name,
			Conditions: []match.Condition{
				{Class: "a", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: "b", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
				{Class: "c", Tests: []match.AttrTest{{Attr: "k", Op: match.OpEq, Var: "x"}}},
			},
			Actions: []match.Action{{Kind: match.ActRemove, CE: 0}},
		}
	}
	s := wm.NewStore()
	n := New()
	if err := n.AddRule(mk("r1")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddRule(mk("r2")); err != nil {
		t.Fatal(err)
	}
	// Alpha memories must be shared: 3 patterns for 2 rules.
	if got := n.Stats().AlphaMems; got != 3 {
		t.Fatalf("alpha memories = %d, want 3 (shared)", got)
	}
	for _, cls := range []string{"a", "b", "c"} {
		n.Insert(s.Insert(cls, attrs("k", 1)))
	}
	if n.ConflictSet().Len() != 2 {
		t.Fatalf("conflict set = %d, want 2 (one per rule)", n.ConflictSet().Len())
	}
}

func TestReteDuplicateRuleAndInvalidRule(t *testing.T) {
	n := New()
	if err := n.AddRule(joinRule()); err != nil {
		t.Fatal(err)
	}
	if err := n.AddRule(joinRule()); err == nil {
		t.Fatal("duplicate rule must be rejected")
	}
	if err := n.AddRule(&match.Rule{Name: "bad"}); err == nil {
		t.Fatal("invalid rule must be rejected")
	}
}

func TestReteIdempotentInsertRemove(t *testing.T) {
	s := wm.NewStore()
	n := New()
	if err := n.AddRule(joinRule()); err != nil {
		t.Fatal(err)
	}
	p := s.Insert("part", attrs("id", 1, "status", "ready"))
	n.Insert(p)
	n.Insert(p) // duplicate insert is a no-op
	m := s.Insert("machine", attrs("accepts", 1, "free", true))
	n.Insert(m)
	if n.ConflictSet().Len() != 1 {
		t.Fatal("duplicate insert corrupted state")
	}
	n.Remove(p)
	n.Remove(p) // duplicate remove is a no-op
	if n.ConflictSet().Len() != 0 {
		t.Fatal("remove failed")
	}
}
