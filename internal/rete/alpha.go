package rete

import (
	"sort"

	"pdps/internal/match"
	"pdps/internal/wm"
)

// This file implements the shared constant-test discrimination network
// (Doorenbos, "Production Matching for Large Learning Systems", §2.2):
// the alpha-network counterpart of the hashed beta memories in
// index.go. Instead of walking every alpha memory registered for a
// WME's class and re-evaluating each pattern's full predicate closure
// (O(rules × tests) per assert), an asserted or retracted WME is
// routed through a per-class tree of discrimination levels:
//
//   - hash layers: a pattern's plain `attr == const` equality tests
//     are canonically ordered and become successive bucket-map probes
//     — one probe per routed attribute the WME carries, however many
//     rules constrain it. The probe itself IS the test: the bucket
//     key encoding (appendValueKey) is injective up to wm.Value.Equal
//     for the routable kinds, so a hit means the equality holds and
//     is never re-evaluated. A miss prunes every pattern below the
//     bucket at once.
//   - residual test nodes: the pattern's remaining tests (non-eq
//     constants, disjunctions, intra-element tests, presence tests)
//     become a chain of single-test nodes in canonical order below
//     the hash layers.
//
// Nodes are structurally deduplicated by their position and test
// signature — the alpha analogue of the betaLevels prefix cache — so
// a test shared by many rules is evaluated once per WME. Every node
// is ref-counted and torn down with the patterns that use it
// (maybeGCAlpha), so removed rules stop taxing the assert path.
//
// Determinism: each level's eqAttrs is kept sorted, residual children
// are insertion-ordered (rule-add order), and routing never iterates
// a Go map — the activation order a WME produces is a function of the
// program, exactly like the hashed join indexes.

// residTest is one residual alpha test: a constant or disjunction
// test, an intra-element test, or an attribute-presence test.
// Exactly one of the three fields is set.
type residTest struct {
	sig      string // structural signature; the sharing key within one level
	ct       *match.AttrTest
	it       *intraTest
	presence string
}

func (rt *residTest) eval(w *wm.WME) bool {
	switch {
	case rt.ct != nil:
		return w.HasAttr(rt.ct.Attr) && rt.ct.Matches(w.Attr(rt.ct.Attr))
	case rt.it != nil:
		return w.HasAttr(rt.it.attrA) && w.HasAttr(rt.it.attrB) &&
			rt.it.op.Eval(w.Attr(rt.it.attrA), w.Attr(rt.it.attrB))
	default:
		return w.HasAttr(rt.presence)
	}
}

// alphaNode is one discrimination node. Hash-bucket nodes and class
// roots are pure routing points (test == nil — the probe that reached
// them already decided); residual nodes evaluate exactly one test. A
// pattern's terminal node carries its alpha memory; kids routes the
// patterns that continue below. refs counts the patterns whose path
// runs through the node.
type alphaNode struct {
	test *residTest
	mem  *alphaMem
	kids *discLevel
	refs int
}

// eqRoot is one hash-routed attribute within a level: value-keyed
// buckets, each the subtree of the patterns whose test at this level
// compares the attribute against the bucket's constant. refs counts
// those patterns.
type eqRoot struct {
	refs    int
	buckets map[string]*alphaNode
}

// discLevel is one branching point of the tree: hash-routed equality
// attributes (eqAttrs mirrors eqRoots' keys in sorted order so
// routing never iterates a map) and the residual test nodes, in
// creation order.
type discLevel struct {
	eqAttrs []string
	eqRoots map[string]*eqRoot
	rest    []*alphaNode
}

// classDisc is the per-class root. A pattern with no tests at all
// terminates directly at the root node.
type classDisc struct {
	root *alphaNode
}

// discStep records how one step of a pattern's path was reached, for
// ref-counted teardown: the level branched through, the routed
// attribute and bucket key (empty for residual steps), and the node.
type discStep struct {
	level  *discLevel
	attr   string
	bucket string
	node   *alphaNode
}

// discPath is a pattern's full location: the class root (steps[0])
// followed by one step per hash probe or residual test.
type discPath struct {
	class string
	steps []discStep
}

// routableKind reports whether appendValueKey's encoding of the kind
// is injective up to Value.Equal, i.e. whether a bucket probe can
// stand in for the equality test itself.
func routableKind(k wm.Kind) bool {
	switch k {
	case wm.KindInt, wm.KindFloat, wm.KindBool, wm.KindString, wm.KindSymbol:
		return true
	}
	return false
}

// splitPattern decomposes a pattern canonically: the hash-routable
// equality tests sorted by (attribute, encoded constant), then the
// residual tests sorted by signature. The decomposition is a pure
// function of the test set, so structurally equal patterns route
// identically and patterns agreeing on a prefix share its nodes.
func splitPattern(consts []match.AttrTest, intras []intraTest, presence []string) (eqs []match.AttrTest, resid []residTest) {
	for i := range consts {
		t := consts[i]
		if !t.IsDisjunction() && t.Op == match.OpEq && routableKind(t.Const.Kind()) {
			eqs = append(eqs, t)
		} else {
			resid = append(resid, residTest{sig: constPart(t), ct: &t})
		}
	}
	sort.Slice(eqs, func(i, j int) bool {
		if eqs[i].Attr != eqs[j].Attr {
			return eqs[i].Attr < eqs[j].Attr
		}
		return string(appendValueKey(nil, eqs[i].Const)) < string(appendValueKey(nil, eqs[j].Const))
	})
	for i := range intras {
		it := intras[i]
		resid = append(resid, residTest{sig: intraPart(it), it: &it})
	}
	for _, a := range presence {
		resid = append(resid, residTest{sig: presencePart(a), presence: a})
	}
	sort.Slice(resid, func(i, j int) bool { return resid[i].sig < resid[j].sig })
	return eqs, resid
}

// discAttach threads a new alpha pattern into its class's
// discrimination tree, creating the levels, buckets and residual
// nodes it needs and taking a reference on every node along the path.
func (n *Network) discAttach(am *alphaMem, consts []match.AttrTest, intras []intraTest, presence []string) {
	d := n.disc[am.class]
	if d == nil {
		d = &classDisc{root: &alphaNode{}}
		n.disc[am.class] = d
	}
	eqs, resid := splitPattern(consts, intras, presence)

	cur := d.root
	cur.refs++
	path := &discPath{class: am.class, steps: []discStep{{node: cur}}}

	level := func() *discLevel {
		if cur.kids == nil {
			cur.kids = &discLevel{}
		}
		return cur.kids
	}
	for _, t := range eqs {
		lv := level()
		if lv.eqRoots == nil {
			lv.eqRoots = make(map[string]*eqRoot)
		}
		er := lv.eqRoots[t.Attr]
		if er == nil {
			er = &eqRoot{buckets: make(map[string]*alphaNode)}
			lv.eqRoots[t.Attr] = er
			lv.eqAttrs = append(lv.eqAttrs, t.Attr)
			sort.Strings(lv.eqAttrs)
		}
		er.refs++
		key := string(appendValueKey(nil, t.Const))
		node := er.buckets[key]
		if node == nil {
			node = &alphaNode{}
			er.buckets[key] = node
		}
		node.refs++
		path.steps = append(path.steps, discStep{level: lv, attr: t.Attr, bucket: key, node: node})
		cur = node
	}
	for _, rt := range resid {
		lv := level()
		var node *alphaNode
		for _, c := range lv.rest {
			if c.test.sig == rt.sig {
				node = c
				break
			}
		}
		if node == nil {
			rt := rt
			node = &alphaNode{test: &rt}
			lv.rest = append(lv.rest, node)
		}
		node.refs++
		path.steps = append(path.steps, discStep{level: lv, node: node})
		cur = node
	}
	cur.mem = am
	am.disc = path
}

// discDetach removes a garbage-collected pattern's path: every node
// on it drops a reference, zero-ref nodes leave their bucket or
// residual list, empty attribute roots and levels are pruned, and a
// class whose tree empties out disappears entirely.
func (n *Network) discDetach(am *alphaMem) {
	path := am.disc
	if path == nil {
		return
	}
	am.disc = nil
	steps := path.steps
	steps[len(steps)-1].node.mem = nil
	for i := len(steps) - 1; i >= 1; i-- {
		st := steps[i]
		st.node.refs--
		if st.attr != "" {
			er := st.level.eqRoots[st.attr]
			if st.node.refs == 0 {
				delete(er.buckets, st.bucket)
			}
			er.refs--
			if er.refs == 0 {
				delete(st.level.eqRoots, st.attr)
				for j, a := range st.level.eqAttrs {
					if a == st.attr {
						st.level.eqAttrs = append(st.level.eqAttrs[:j], st.level.eqAttrs[j+1:]...)
						break
					}
				}
			}
		} else if st.node.refs == 0 {
			for j, c := range st.level.rest {
				if c == st.node {
					st.level.rest = append(st.level.rest[:j], st.level.rest[j+1:]...)
					break
				}
			}
		}
		if len(st.level.eqRoots) == 0 && len(st.level.rest) == 0 {
			steps[i-1].node.kids = nil
		}
	}
	root := steps[0].node
	root.refs--
	if root.refs == 0 {
		delete(n.disc, path.class)
	}
}

// routeWME routes a WME through its class's discrimination tree,
// appending every alpha memory whose pattern it satisfies to out
// (which callers pass as pooled scratch). The routing order — sorted
// attributes per level, then residual nodes in creation order — is a
// function of the program, never of map iteration.
func (n *Network) routeWME(w *wm.WME, out []*alphaMem) []*alphaMem {
	d := n.disc[w.Class]
	if d == nil {
		return out
	}
	return n.routeAlpha(d.root, w, out)
}

// routeAlpha evaluates one node's residual test (roots and bucket
// nodes pass — their probe already decided), collects the node's
// memory, and descends into its branching level.
func (n *Network) routeAlpha(node *alphaNode, w *wm.WME, out []*alphaMem) []*alphaMem {
	if node.test != nil {
		n.metAlphaTest()
		if !node.test.eval(w) {
			return out
		}
	}
	if node.mem != nil {
		out = append(out, node.mem)
	}
	if node.kids != nil {
		out = n.routeLevel(node.kids, w, out)
	}
	return out
}

// routeLevel probes each hash-routed attribute the WME carries and
// walks the residual nodes. The key scratch buffer is handed through
// the Network so recursion reuses one allocation-free buffer.
func (n *Network) routeLevel(lv *discLevel, w *wm.WME, out []*alphaMem) []*alphaMem {
	buf := n.akbuf
	for _, attr := range lv.eqAttrs {
		if !w.HasAttr(attr) {
			continue
		}
		buf = appendValueKey(buf[:0], w.Attr(attr))
		n.metAlphaProbe()
		if b := lv.eqRoots[attr].buckets[string(buf)]; b != nil {
			n.akbuf = buf
			out = n.routeAlpha(b, w, out)
			buf = n.akbuf
		}
	}
	n.akbuf = buf
	for _, c := range lv.rest {
		out = n.routeAlpha(c, w, out)
	}
	return out
}

// maybeGCAlpha unregisters an alpha memory once its last successor is
// detached (removeChain dropped the final join or negative node using
// the pattern): the memory leaves alphaByKey/alphaByClass — so neither
// the linear walk nor the discrimination network taxes future asserts
// with it — and its discrimination path is ref-counted away. A later
// AddRule needing the same pattern rebuilds and back-fills it.
func (n *Network) maybeGCAlpha(am *alphaMem) {
	if len(am.successors) > 0 || n.alphaByKey[am.key] != am {
		return
	}
	delete(n.alphaByKey, am.key)
	list := n.alphaByClass[am.class]
	for i, x := range list {
		if x == am {
			n.alphaByClass[am.class] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(n.alphaByClass[am.class]) == 0 {
		delete(n.alphaByClass, am.class)
	}
	n.discDetach(am)
	am.items = nil
}

// walkDisc visits every discrimination node below (not including) a
// class root, in unspecified order — for counting and invariant
// sweeps only, never routing.
func walkDisc(lv *discLevel, fn func(node *alphaNode)) {
	if lv == nil {
		return
	}
	var visit func(node *alphaNode)
	visit = func(node *alphaNode) {
		fn(node)
		walkDisc(node.kids, fn)
	}
	for _, er := range lv.eqRoots {
		for _, b := range er.buckets {
			visit(b)
		}
	}
	for _, c := range lv.rest {
		visit(c)
	}
}

// countSharedAlpha counts discrimination nodes (hash buckets and
// residual test nodes) on more than one pattern's path — the
// cross-rule factoring the network achieves, published as
// rete_alpha_shared.
func (n *Network) countSharedAlpha() int64 {
	var shared int64
	for _, d := range n.disc {
		walkDisc(d.root.kids, func(node *alphaNode) {
			if node.refs > 1 {
				shared++
			}
		})
	}
	return shared
}
