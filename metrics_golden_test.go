package pdps_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"pdps"
)

// TestGoldenMetrics pins the full metric snapshot of a deterministic
// run: the quickstart program on the dynamic engine under a replayed
// schedule, with per-rule costs on the virtual clock so every duration
// histogram has non-zero, schedule-determined values. The snapshot is
// a pure function of the schedule — counters and histograms do only
// order-independent integral arithmetic and all timing flows through
// the controller's clock — so any drift in this file is a change to
// what the engine observes, not measurement noise. Regenerate with
// -update. The same program and flags back the README observability
// quickstart and the `make metrics-check` CI target.
func TestGoldenMetrics(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "examples", "quickstart.ops"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := pdps.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	delays := make(map[string]time.Duration, len(prog.Rules))
	for _, r := range prog.Rules {
		delays[r.Name] = time.Millisecond
	}
	cfg := pdps.DetConfig{
		Scheme:    pdps.SchemeRcRaWa,
		Np:        2,
		CondDelay: delays,
		RuleDelay: delays,
	}
	out := pdps.DetRun(prog, cfg, pdps.NewReplaySchedPolicy(nil))
	if err := pdps.DetCheck(prog, out); err != nil {
		t.Fatal(err)
	}
	got, err := out.Metrics.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	goldenPath := filepath.Join("testdata", "golden", "metrics_quickstart.json")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with go test -run TestGoldenMetrics -update)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("metric snapshot diverged from %s (regenerate with -update if intended)\n--- got ---\n%s--- want ---\n%s",
			goldenPath, got, want)
	}
}
