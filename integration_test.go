package pdps_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"pdps"
)

// integrationCase describes one testdata program and the expectations
// every engine must satisfy.
type integrationCase struct {
	file     string
	strategy string
	firings  int
	// serialOnly skips the dynamic parallel engines for programs whose
	// outcome depends on the selection strategy: in the multiple-thread
	// mechanism every active production fires, so strategy preferences
	// (e.g. priorities) do not serialise mutually-enabled rules — the
	// behaviour the paper's footnote 1 warns about.
	serialOnly bool
	// check inspects the final working memory.
	check func(t *testing.T, label string, store *pdps.Store)
}

func integrationCases() []integrationCase {
	return []integrationCase{
		{
			file:    "towers.ops",
			firings: 3,
			check: func(t *testing.T, label string, store *pdps.Store) {
				t.Helper()
				if n := len(store.ByClass("move")); n != 0 {
					t.Fatalf("%s: %d moves left", label, n)
				}
				pegs := map[int64]int64{}
				for _, w := range store.ByClass("ring") {
					pegs[w.Attr("id").AsInt()] = w.Attr("peg").AsInt()
				}
				if pegs[1] != 2 || pegs[2] != 2 {
					t.Fatalf("%s: pegs = %v, want both rings on peg 2", label, pegs)
				}
			},
		},
		{
			file:    "routing.ops",
			firings: 4, // start(1) + propagations 1→2, 2→3, 2→4; 5 and 6 unreachable
			check: func(t *testing.T, label string, store *pdps.Store) {
				t.Helper()
				var reached []int64
				for _, w := range store.ByClass("reached") {
					reached = append(reached, w.Attr("node").AsInt())
				}
				sort.Slice(reached, func(i, j int) bool { return reached[i] < reached[j] })
				want := []int64{1, 2, 3, 4}
				if fmt.Sprint(reached) != fmt.Sprint(want) {
					t.Fatalf("%s: reached = %v, want %v", label, reached, want)
				}
			},
		},
		{
			file:       "escalation.ops",
			strategy:   "priority",
			firings:    3,
			serialOnly: true,
			check: func(t *testing.T, label string, store *pdps.Store) {
				t.Helper()
				states := map[int64]string{}
				for _, w := range store.ByClass("alert") {
					states[w.Attr("id").AsInt()] = w.Attr("state").AsString()
				}
				if states[1] != "paged" || states[2] != "queued" || states[3] != "ignored" {
					t.Fatalf("%s: states = %v", label, states)
				}
			},
		},
		{
			file:    "fibonacci.ops",
			firings: 10,
			check: func(t *testing.T, label string, store *pdps.Store) {
				t.Helper()
				fib := store.ByClass("fib")[0]
				if got := fib.Attr("a").AsInt(); got != 55 {
					t.Fatalf("%s: fib(10) = %d, want 55", label, got)
				}
			},
		},
	}
}

func loadTestdata(t *testing.T, name string) pdps.Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := pdps.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestIntegrationPrograms runs each testdata program under every
// engine and matcher combination, checking firings, final working
// memory, and trace consistency.
func TestIntegrationPrograms(t *testing.T) {
	for _, c := range integrationCases() {
		c := c
		t.Run(c.file, func(t *testing.T) {
			strategyName := c.strategy
			if strategyName == "" {
				strategyName = "lex"
			}
			mkOpts := func(matcher string, shards int) pdps.Options {
				st, err := pdps.NewStrategy(strategyName)
				if err != nil {
					t.Fatal(err)
				}
				return pdps.Options{Matcher: matcher, MatchShards: shards, Strategy: st, Np: 4, Verify: true}
			}
			type build func() (string, pdps.Engine, pdps.Program)
			builders := []build{
				func() (string, pdps.Engine, pdps.Program) {
					p := loadTestdata(t, c.file)
					e, err := pdps.NewSingleEngine(p, mkOpts("rete", 1))
					if err != nil {
						t.Fatal(err)
					}
					return "single/rete", e, p
				},
				func() (string, pdps.Engine, pdps.Program) {
					p := loadTestdata(t, c.file)
					e, err := pdps.NewSingleEngine(p, mkOpts("treat", 1))
					if err != nil {
						t.Fatal(err)
					}
					return "single/treat", e, p
				},
				func() (string, pdps.Engine, pdps.Program) {
					p := loadTestdata(t, c.file)
					e, err := pdps.NewSingleEngine(p, mkOpts("naive", 3))
					if err != nil {
						t.Fatal(err)
					}
					return "single/naive-sharded", e, p
				},
				func() (string, pdps.Engine, pdps.Program) {
					p := loadTestdata(t, c.file)
					e, err := pdps.NewParallelEngine(p, pdps.Scheme2PL, mkOpts("rete", 1))
					if err != nil {
						t.Fatal(err)
					}
					return "parallel/2pl", e, p
				},
				func() (string, pdps.Engine, pdps.Program) {
					p := loadTestdata(t, c.file)
					e, err := pdps.NewParallelEngine(p, pdps.SchemeRcRaWa, mkOpts("rete", 1))
					if err != nil {
						t.Fatal(err)
					}
					return "parallel/rcrawa", e, p
				},
				func() (string, pdps.Engine, pdps.Program) {
					p := loadTestdata(t, c.file)
					e, err := pdps.NewStaticEngine(p, mkOpts("rete", 1))
					if err != nil {
						t.Fatal(err)
					}
					return "static", e, p
				},
			}
			for _, b := range builders {
				label, eng, prog := b()
				if c.serialOnly && (label == "parallel/2pl" || label == "parallel/rcrawa") {
					continue
				}
				res, err := eng.Run()
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if res.Firings != c.firings {
					t.Fatalf("%s: firings = %d, want %d", label, res.Firings, c.firings)
				}
				if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				c.check(t, label, eng.Store())
			}
		})
	}
}
