package pdps_test

import (
	"strings"
	"testing"

	"pdps"
)

const quickProgram = `
(p advance
  (part ^stage 0)
  -->
  (modify 1 ^stage 1))
(p finish
  (part ^stage 1)
  -->
  (remove 1))
(wme part ^stage 0 ^id 1)
(wme part ^stage 0 ^id 2)
`

func TestPublicAPISingle(t *testing.T) {
	prog := pdps.MustParse(quickProgram)
	eng, err := pdps.NewSingleEngine(prog, pdps.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 4 {
		t.Fatalf("firings = %d, want 4", res.Firings)
	}
	if eng.Store().Len() != 0 {
		t.Fatal("working memory not drained")
	}
	if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIParallelBothSchemes(t *testing.T) {
	for _, scheme := range []pdps.Scheme{pdps.Scheme2PL, pdps.SchemeRcRaWa} {
		prog := pdps.Pipeline(8, 3)
		eng, err := pdps.NewParallelEngine(prog, scheme, pdps.Options{Np: 4, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.Firings != 24 {
			t.Fatalf("%v: firings = %d, want 24", scheme, res.Firings)
		}
		if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
	}
}

func TestPublicAPIStatic(t *testing.T) {
	prog := pdps.Guarded(8)
	eng, err := pdps.NewStaticEngine(prog, pdps.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 8 jobs: lanes 1 and 3 held (4 jobs wait for clears), all ship
	// eventually; plus 2 clear firings.
	if res.Firings != 10 {
		t.Fatalf("firings = %d, want 10", res.Firings)
	}
	if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPISimulatorFigures(t *testing.T) {
	cases := []struct {
		name    string
		sys     *pdps.System
		np      int
		tSingle int
		tMulti  int
	}{
		{"fig5.1", pdps.Fig51System(), 4, 9, 4},
		{"fig5.2", pdps.Fig52System(), 4, 5, 3},
		{"fig5.3", pdps.Fig53System(), 4, 10, 4},
		{"fig5.4", pdps.Fig51System(), pdps.Fig54Np(), 9, 6},
	}
	for _, c := range cases {
		res, err := pdps.Simulate(c.sys, pdps.SimConfig{Np: c.np})
		if err != nil {
			t.Fatal(err)
		}
		if res.TSingle != c.tSingle || res.TMulti != c.tMulti {
			t.Errorf("%s: T_single/T_multi = %d/%d, want %d/%d",
				c.name, res.TSingle, res.TMulti, c.tSingle, c.tMulti)
		}
	}
}

func TestPublicAPIAbstractModel(t *testing.T) {
	sys := pdps.Fig32System()
	seqs := sys.CompletedSequences(10)
	if len(seqs) == 0 {
		t.Fatal("no completed sequences")
	}
	for _, seq := range seqs {
		if !sys.IsValidSequence(seq) {
			t.Fatalf("invalid enumerated sequence %v", seq)
		}
	}
	if !strings.Contains(sys.BuildGraph(10).Dot(), "digraph") {
		t.Fatal("Dot rendering broken")
	}
}

func TestPublicAPIFormatRoundTrip(t *testing.T) {
	prog := pdps.MustParse(quickProgram)
	text := pdps.Format(prog)
	again, err := pdps.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Rules) != 2 || len(again.WMEs) != 2 {
		t.Fatal("round-trip lost declarations")
	}
}

func TestPublicAPIStrategies(t *testing.T) {
	for _, name := range []string{"lex", "mea", "fifo", "priority", "random"} {
		st, err := pdps.NewStrategy(name)
		if err != nil {
			t.Fatal(err)
		}
		prog := pdps.Pipeline(3, 2)
		eng, err := pdps.NewSingleEngine(prog, pdps.Options{Strategy: st})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Firings != 6 {
			t.Fatalf("%s: firings = %d, want 6", name, res.Firings)
		}
	}
}

func TestPublicAPIInterferes(t *testing.T) {
	prog := pdps.SharedCounter(1, 2)
	if !pdps.Interferes(prog.Rules[0], prog.Rules[1]) {
		t.Fatal("tally rules must interfere")
	}
	pipe := pdps.Pipeline(1, 3)
	if !pdps.Interferes(pipe.Rules[0], pipe.Rules[1]) {
		t.Fatal("same-class pipeline rules interfere (class-level writes)")
	}
}
