package pdps_test

import (
	"reflect"
	"testing"

	"pdps"
)

// TestPublicDeterministicAPI drives the exported scheduling surface:
// a seeded deterministic run through DetRun must reproduce bit-for-bit,
// pass DetCheck, and Explore must enumerate the schedule space of a
// small program without violations.
func TestPublicDeterministicAPI(t *testing.T) {
	prog := pdps.MustParse(`
	  (p eat (snack ^left <n> ^left > 0) --> (modify 1 ^left (- <n> 1)))
	  (wme snack ^left 2)`)

	cfg := pdps.DetConfig{Scheme: pdps.Scheme2PL, Np: 2}
	a := pdps.DetRun(prog, cfg, pdps.NewRandomSchedPolicy(1))
	b := pdps.DetRun(prog, cfg, pdps.NewRandomSchedPolicy(1))
	if err := pdps.DetCheck(prog, a); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Choices, b.Choices) {
		t.Fatal("same seed produced different schedules")
	}
	if a.Result.Firings != 2 {
		t.Fatalf("firings = %d, want 2", a.Result.Firings)
	}

	rep, err := pdps.Explore(prog, cfg, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated || rep.Schedules < 2 {
		t.Fatalf("explore: %+v", rep)
	}
}
