// Command psfuzz runs the deterministic metamorphic fuzzer: randomly
// generated contended programs executed on the Parallel engine under
// seeded deterministic schedules, with every commit trace checked
// against the single-thread execution semantics (Definition 3.2) and
// the generator's exact commit-count invariant.
//
//	psfuzz -n 200 -seeds 3 -seed 1 -repro-dir testdata/repros
//
// Exit status is 1 when a violation is found; the shrunk reproducer is
// written to -repro-dir as a rule-language file.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pdps/internal/detsched"
)

func main() {
	var (
		n        = flag.Int("n", 200, "number of generated programs")
		seeds    = flag.Int("seeds", 3, "schedule seeds per program")
		seed     = flag.Int64("seed", 0, "campaign seed (0 = derive from time)")
		np       = flag.Int("np", 2, "worker count")
		budget   = flag.Duration("budget", 0, "wall-clock budget (0 = unlimited); campaign runs in slices until exceeded")
		reproDir = flag.String("repro-dir", "testdata/repros", "directory for shrunk reproducers")
		corrupt  = flag.Bool("corrupt", false, "inject an artificial oracle violation (pipeline self-test)")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	start := time.Now()
	// Run the campaign in slices so a wall-clock budget can stop it
	// between programs; each slice advances the campaign seed so no
	// programs repeat.
	const slice = 25
	done, runs := 0, 0
	for done < *n {
		batch := slice
		if rem := *n - done; rem < batch {
			batch = rem
		}
		v, st := detsched.Fuzz(detsched.FuzzConfig{
			Programs:        batch,
			SeedsPerProgram: *seeds,
			Seed:            *seed + int64(done),
			Np:              *np,
			ReproDir:        *reproDir,
			Corrupt:         *corrupt,
			Log:             logf,
		})
		done += st.Programs
		runs += st.Runs
		if v != nil {
			fmt.Fprintf(os.Stderr, "psfuzz: FAIL after %d programs (%d runs, %v): %v\n",
				done, runs, time.Since(start).Round(time.Millisecond), v)
			if v.ReproPath != "" {
				fmt.Fprintf(os.Stderr, "psfuzz: reproducer written to %s\n", v.ReproPath)
			}
			os.Exit(1)
		}
		if *budget > 0 && time.Since(start) > *budget {
			fmt.Printf("psfuzz: budget reached: %d programs, %d runs, %v, all consistent\n",
				done, runs, time.Since(start).Round(time.Millisecond))
			return
		}
	}
	fmt.Printf("psfuzz: OK: %d programs, %d runs, %v, all consistent\n",
		done, runs, time.Since(start).Round(time.Millisecond))
}
