// Command psgen emits synthetic production-system programs in the rule
// language, for feeding psrun or external experimentation.
//
// Usage:
//
//	psgen -kind pipeline -parts 20 -stages 4 > prog.ops
//	psgen -kind counter  -parts 10 -stages 3 > prog.ops
//	psgen -kind guarded  -parts 12 > prog.ops
//	psgen -kind random   -seed 7 -parts 30 -stages 5 > prog.ops
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pdps"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psgen: ")

	var (
		kind   = flag.String("kind", "pipeline", "workload: pipeline, counter, guarded, random")
		parts  = flag.Int("parts", 20, "number of parts / jobs / tuples")
		stages = flag.Int("stages", 4, "stages / layers")
		seed   = flag.Int64("seed", 1, "seed for -kind random")
	)
	flag.Parse()

	var prog pdps.Program
	switch *kind {
	case "pipeline":
		prog = pdps.Pipeline(*parts, *stages)
	case "counter":
		prog = pdps.SharedCounter(*parts, *stages)
	case "guarded":
		prog = pdps.Guarded(*parts)
	case "random":
		prog = pdps.RandomProgram(*seed, *stages, *parts)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}

	if _, err := fmt.Fprint(os.Stdout, pdps.Format(prog)); err != nil {
		log.Fatal(err)
	}
}
