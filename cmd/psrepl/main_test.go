package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMain lets the test binary impersonate psrepl (PSREPL_MAIN=1), so
// the loopback test drives the real CLI — one primary process, two
// follower processes — without a go build step.
func TestMain(m *testing.M) {
	if os.Getenv("PSREPL_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

const smokeProgram = `
(p grow
  (cell ^gen <g> ^alive true)
  (limit ^gen > <g>)
  -->
  (modify 1 ^gen (+ <g> 1)))
(wme limit ^gen 5)
(wme cell ^id 0 ^gen 0 ^alive true)
(wme cell ^id 1 ^gen 0 ^alive true)
(wme cell ^id 2 ^gen 0 ^alive true)
(wme cell ^id 3 ^gen 0 ^alive true)
`

func psrepl(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "PSREPL_MAIN=1")
	return cmd
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestLoopbackSmoke is the CLI end of the tentpole: a primary process
// streams a run to one replay and one apply follower process; both
// must verify and report the same store hash.
func TestLoopbackSmoke(t *testing.T) {
	dir := t.TempDir()
	progFile := filepath.Join(dir, "grow.ops")
	if err := os.WriteFile(progFile, []byte(smokeProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	addr := freePort(t)

	primary := psrepl(t, "-listen", addr, "-program", progFile,
		"-np", "3", "-seed", "7", "-followers", "2", "-drain", "60s",
		"-metrics-json", filepath.Join(dir, "primary.json"))
	pout := &strings.Builder{}
	primary.Stdout, primary.Stderr = pout, pout
	if err := primary.Start(); err != nil {
		t.Fatal(err)
	}
	defer primary.Process.Kill()

	// Wait for the listener before pointing followers at it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			c.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never listened:\n%s", pout.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	type followerRun struct {
		out string
		err error
	}
	results := make([]followerRun, 2)
	var wg sync.WaitGroup
	for i, mode := range []string{"replay", "apply"} {
		wg.Add(1)
		go func(i int, mode string) {
			defer wg.Done()
			f := psrepl(t, "-connect", addr, "-mode", mode,
				"-id", fmt.Sprintf("f%d", i),
				"-metrics-json", filepath.Join(dir, fmt.Sprintf("f%d.json", i)))
			b, err := f.CombinedOutput()
			results[i] = followerRun{out: string(b), err: err}
		}(i, mode)
	}
	wg.Wait()
	if err := primary.Wait(); err != nil {
		t.Fatalf("primary: %v\n%s", err, pout.String())
	}
	if !strings.Contains(pout.String(), "firings=20") {
		t.Fatalf("primary output (want 4 cells x 5 gens = 20 firings):\n%s", pout.String())
	}

	hashes := make([]string, 2)
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("follower %d: %v\n%s", i, r.err, r.out)
		}
		if !strings.Contains(r.out, "records=20") || !strings.Contains(r.out, "trace checked: true") {
			t.Fatalf("follower %d output:\n%s", i, r.out)
		}
		for _, line := range strings.Split(r.out, "\n") {
			if strings.HasPrefix(line, "store hash ") {
				hashes[i] = strings.Fields(line)[2]
			}
		}
	}
	if hashes[0] == "" || hashes[0] != hashes[1] {
		t.Fatalf("store hashes differ across modes: %q vs %q", hashes[0], hashes[1])
	}
	for _, f := range []string{"primary.json", "f0.json", "f1.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("metrics artifact %s missing: %v", f, err)
		}
	}
}
