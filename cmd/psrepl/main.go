// Command psrepl is the schedule-shipping replication pair: a primary
// that executes one deterministic engine run while streaming its
// schedule and commit records, and a follower that replays (or
// applies) the stream and verifies byte-identity against the primary.
// See docs/REPLICATION.md for the protocol and divergence semantics.
//
// Primary:
//
//	psrepl -listen 127.0.0.1:7471 -program prog.ops \
//	       -np 4 -seed 42 -checkpoint-every 256 -drain 10s
//
// Follower (replay replica, full re-execution):
//
//	psrepl -connect 127.0.0.1:7471 -id r1
//
// Follower (apply replica, snapshot + record suffix):
//
//	psrepl -connect 127.0.0.1:7471 -id r2 -mode apply
//
// The primary exits once the run finished and every connected follower
// acked the head LSN (or -drain expired); a follower exits after
// verifying the fin frame, printing the replicated run summary and
// store hash. A diverged follower exits nonzero.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"pdps/internal/obs"
	"pdps/internal/repl"
	"pdps/internal/server"
)

func main() {
	var (
		listen  = flag.String("listen", "", "run as primary: listen address for followers")
		connect = flag.String("connect", "", "run as follower: primary address")
		program = flag.String("program", "", "primary: rule program file (.ops)")

		scheme      = flag.String("scheme", "rcrawa", "locking scheme: 2pl or rcrawa")
		np          = flag.Int("np", 4, "worker count")
		matcher     = flag.String("matcher", "", "match algorithm (default rete)")
		deadlock    = flag.String("deadlock", "detect", "deadlock policy: detect, wound-wait or wait-die")
		abortPolicy = flag.String("abort", "always", "Rc-victim policy: always or reevaluate")
		maxFirings  = flag.Int("max-firings", 0, "commit bound (0 = engine default)")
		seed        = flag.Int64("seed", 1, "primary schedule seed")
		ckptEvery   = flag.Int("checkpoint-every", 256, "records between apply-bootstrap checkpoints (negative disables)")
		followers   = flag.Int("followers", 0, "primary: wait for this many followers to fully drain before exiting")
		drain       = flag.Duration("drain", 10*time.Second, "primary: wait this long for followers to ack the head LSN")

		mode     = flag.String("mode", "replay", "follower mode: replay or apply")
		id       = flag.String("id", "", "follower metric label")
		waitFor  = flag.Duration("wait", 60*time.Second, "follower: fin verification timeout")
		metrics  = flag.Bool("metrics", false, "print the repl metrics snapshot on exit")
		metricsJ = flag.String("metrics-json", "", "write the repl metrics snapshot to this file")
	)
	flag.Parse()

	switch {
	case *listen != "" && *connect != "":
		log.Fatal("psrepl: -listen and -connect are mutually exclusive")
	case *listen != "":
		runPrimary(*listen, *program, repl.RunConfig{
			Scheme:     *scheme,
			Np:         *np,
			Matcher:    *matcher,
			Deadlock:   *deadlock,
			Abort:      *abortPolicy,
			MaxFirings: *maxFirings,
			Seed:       *seed,
		}, *ckptEvery, *followers, *drain, *metrics, *metricsJ)
	case *connect != "":
		runFollower(*connect, *mode, *id, *waitFor, *metrics, *metricsJ)
	default:
		log.Fatal("psrepl: pass -listen (primary) or -connect (follower)")
	}
}

func runPrimary(addr, progFile string, cfg repl.RunConfig, ckptEvery, followers int,
	drain time.Duration, metrics bool, metricsJSON string) {
	if progFile == "" {
		log.Fatal("psrepl: primary needs -program")
	}
	src, err := os.ReadFile(progFile)
	if err != nil {
		log.Fatal(err)
	}
	p, err := repl.NewPrimary(repl.PrimaryOptions{
		Program:         string(src),
		Config:          cfg,
		CheckpointEvery: ckptEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Listen(addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("psrepl primary on %s (scheme=%s np=%d seed=%d)\n",
		p.Addr(), cfg.Scheme, cfg.Np, cfg.Seed)

	out, err := p.Run()
	if err != nil {
		p.Close()
		log.Fatalf("psrepl: run failed: %v", err)
	}
	fmt.Printf("run done: firings=%d aborts=%d halted=%v records=%d\n",
		out.Result.Firings, out.Result.Aborts, out.Result.Halted, p.HeadLSN())
	drained := false
	if followers > 0 {
		drained = p.WaitFollowersDrained(followers, drain)
	} else {
		drained = p.WaitDrained(drain)
	}
	if !drained {
		fmt.Println("drain timeout: some followers have not acked the head LSN")
	} else if followers > 0 {
		fmt.Printf("drained: %d followers acked the head LSN\n", followers)
	}
	writeMetrics(p.Metrics(), metrics, metricsJSON)
	p.Close()
}

func runFollower(addr, mode, id string, waitFor time.Duration, metrics bool, metricsJSON string) {
	if mode != server.ReplModeReplay && mode != server.ReplModeApply {
		log.Fatalf("psrepl: unknown -mode %q", mode)
	}
	f := repl.NewFollower(repl.FollowerOptions{ID: id, Mode: mode})
	if err := f.Connect(addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("psrepl follower %q connected to %s (mode=%s)\n", id, addr, mode)
	rep, err := f.Wait(waitFor)
	writeMetrics(f.Metrics(), metrics, metricsJSON)
	if err != nil {
		f.Close()
		log.Fatalf("psrepl: replica failed: %v", err)
	}
	fmt.Printf("replicated: mode=%s records=%d choices=%d fired=%d halted=%v quiescent=%v\n",
		rep.Mode, rep.Records, rep.Choices, rep.Fired, rep.Halted, rep.Quiescent)
	fmt.Printf("store hash %s (trace checked: %v)\n", rep.StoreHash, rep.TraceChecked)
	f.Close()
}

func writeMetrics(reg *obs.Registry, show bool, path string) {
	if !show && path == "" {
		return
	}
	snap := reg.Snapshot()
	if show {
		fmt.Println("psrepl: repl metrics:")
		snap.WriteText(os.Stdout)
	}
	if path != "" {
		b, err := snap.MarshalIndent()
		if err != nil {
			log.Fatal(err)
		}
		if dir := filepath.Dir(path); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("psrepl: repl metrics written to %s\n", path)
	}
}
