// Command psshell is an interactive production-system shell: load rule
// files, assert and retract tuples, inspect the conflict set, and step
// or run the recognize-act cycle — the workflow of a database
// production system developer.
//
//	$ psshell program.ops
//	pdps> wm                      show working memory
//	pdps> cs                      show the conflict set
//	pdps> assert (part ^id 7 ^status ready)
//	pdps> step                    fire one production
//	pdps> run 100                 fire up to 100 productions
//	pdps> retract 3               remove WME with ID 3
//	pdps> rules                   list rules
//	pdps> metrics                 dump the session's metric counters
//	pdps> save snapshot.wm        snapshot working memory
//	pdps> quit
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"pdps"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psshell: ")

	sh, err := newShell(os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	sh.repl(os.Stdin, os.Stdout)
}

// shell holds the session state. It drives the engine's substrate
// directly through the public API: a program, a store-backed session
// and a per-step single-thread engine over the remaining state.
type shell struct {
	prog    pdps.Program
	session *pdps.Session
}

func newShell(args []string) (*shell, error) {
	var prog pdps.Program
	for _, path := range args {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		p, err := pdps.Parse(string(src))
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, p.Rules...)
		prog.WMEs = append(prog.WMEs, p.WMEs...)
	}
	session, err := pdps.NewSession(prog, pdps.Options{})
	if err != nil {
		return nil, err
	}
	return &shell{prog: prog, session: session}, nil
}

func (sh *shell) repl(in *os.File, out *os.File) {
	scanner := bufio.NewScanner(in)
	fmt.Fprintf(out, "pdps shell — %d rules, %d tuples. Type 'help'.\n",
		len(sh.prog.Rules), sh.session.Store().Len())
	for {
		fmt.Fprint(out, "pdps> ")
		if !scanner.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := sh.exec(out, line); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		}
	}
}

func (sh *shell) exec(out *os.File, line string) error {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "help":
		fmt.Fprintln(out, `commands:
  wm                 list working memory
  cs                 list the conflict set
  rules              list rule names
  plan               show each rule's compiled join order and cost
  assert (class ^a v ...)   add a tuple
  retract <id>       remove a tuple by ID
  step               fire one production (LEX selection)
  run [n]            fire up to n productions (default 1000)
  metrics [json]     dump the session's metrics (text, or JSON snapshot)
  save <file>        write a working-memory snapshot
  load <file>        replace working memory from a snapshot
  quit`)
	case "wm":
		for _, w := range sh.session.Store().All() {
			fmt.Fprintf(out, "  #%d %s\n", w.ID, w)
		}
	case "cs":
		for _, in := range sh.session.ConflictSet() {
			fmt.Fprintf(out, "  %s\n", in)
		}
	case "rules":
		for _, r := range sh.prog.Rules {
			fmt.Fprintf(out, "  %s (%d CEs, %d actions)\n", r.Name, len(r.Conditions), len(r.Actions))
		}
	case "plan":
		// Compile the program's rules into fresh networks so the plans
		// reflect current compilation, whatever matcher the session runs:
		// source order on the left, the cost plan on the right.
		src, pln := pdps.NewSourceOrderReteNetwork(), pdps.NewReteNetwork()
		for _, r := range sh.prog.Rules {
			if err := src.AddRule(r); err != nil {
				return err
			}
			if err := pln.AddRule(r); err != nil {
				return err
			}
		}
		srcPlans, plnPlans := src.Plans(), pln.Plans()
		for i := range plnPlans {
			fmt.Fprintf(out, "  src:  %s\n  plan: %s\n", srcPlans[i], plnPlans[i])
		}
	case "assert":
		return sh.session.Assert(rest)
	case "retract":
		id, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return fmt.Errorf("retract wants a WME ID: %v", err)
		}
		return sh.session.Retract(id)
	case "step":
		fired, err := sh.session.Step()
		if err != nil {
			return err
		}
		if fired == "" {
			fmt.Fprintln(out, "quiescent: nothing to fire")
		} else {
			fmt.Fprintf(out, "fired %s\n", fired)
		}
	case "run":
		n := 1000
		if rest != "" {
			v, err := strconv.Atoi(rest)
			if err != nil {
				return err
			}
			n = v
		}
		fired, err := sh.session.Run(n)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "fired %d productions\n", fired)
	case "metrics":
		snap := sh.session.Metrics().Snapshot()
		if rest == "json" {
			b, err := snap.MarshalIndent()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, string(b))
		} else {
			fmt.Fprint(out, snap.Text())
		}
	case "save":
		f, err := os.Create(rest)
		if err != nil {
			return err
		}
		defer f.Close()
		return sh.session.Store().WriteSnapshot(f)
	case "load":
		f, err := os.Open(rest)
		if err != nil {
			return err
		}
		defer f.Close()
		return sh.session.LoadSnapshot(f)
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
	return nil
}
