package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"pdps"
)

// misorderedRule is the JoinHeavyMisordered rule shape: two wide
// reference classes listed first, the selective pattern and the task
// last — the adversarial source order the static planner must fix.
func misorderedRule() *pdps.Rule {
	kv := func() []pdps.AttrTest {
		return []pdps.AttrTest{{Attr: "k", Op: pdps.OpEq, Var: "x"}}
	}
	return &pdps.Rule{
		Name: "finish",
		Conditions: []pdps.Condition{
			{Class: "wide0", Tests: kv()},
			{Class: "wide1", Tests: kv()},
			{Class: "sel", Tests: []pdps.AttrTest{
				{Attr: "hot", Op: pdps.OpEq, Const: pdps.Bool(true)},
				{Attr: "k", Op: pdps.OpEq, Var: "x"},
			}},
			{Class: "task", Tests: []pdps.AttrTest{
				{Attr: "k", Op: pdps.OpEq, Var: "x"},
				{Attr: "done", Op: pdps.OpEq, Const: pdps.Bool(false)},
			}},
		},
		Actions: []pdps.Action{{Kind: pdps.ActHalt}},
	}
}

// skewedRule is the JoinHeavySkewed rule shape: statically
// indistinguishable join classes whose run-time cardinalities are
// wildly different — only live observations can order them.
func skewedRule() *pdps.Rule {
	kv := func() []pdps.AttrTest {
		return []pdps.AttrTest{{Attr: "k", Op: pdps.OpEq, Var: "x"}}
	}
	return &pdps.Rule{
		Name: "finish",
		Conditions: []pdps.Condition{
			{Class: "task", Tests: []pdps.AttrTest{
				{Attr: "k", Op: pdps.OpEq, Var: "x"},
				{Attr: "done", Op: pdps.OpEq, Const: pdps.Bool(false)},
			}},
			{Class: "big0", Tests: kv()},
			{Class: "big1", Tests: kv()},
			{Class: "tiny", Tests: kv()},
		},
		Actions: []pdps.Action{{Kind: pdps.ActHalt}},
	}
}

// e21 measures cost-based Rete compilation. Part (i) is the headline:
// the misordered join shape at growing memory sizes, source-order
// compilation ("rete-src", the PR 4 network) against the cost planner
// ("rete"). Build is dominated by the keys×width² intermediate beta
// memory the source order materialises and the plan avoids; churn
// inserts wide0 tuples, which the source order must speculatively join
// through wide1 (O(width) tokens each) while the planned chain, with
// the selective patterns first, answers from an empty bucket. Part
// (ii) shows beta-prefix sharing across rules with a common reordered
// prefix. Part (iii) is adaptive replanning on the statically
// indistinguishable skewed shape: the static plan is bad on both
// networks, and only the adaptive one escapes it mid-run. Part (iv)
// pins the regression bound: an already well-ordered chain must
// compile identically and run within noise of rete-src.
func e21() {
	if *retePlan {
		dumpPlans()
	}
	const width = 8
	fmt.Printf("  (i) adversarially-ordered join (width=%d, hot=1/16; build + 2000-insert churn, best of 3):\n", width)
	fmt.Printf("  %-8s %2s %12s %12s %7s %2s %12s %12s %7s\n",
		"keys", "", "build:src", "build:plan", "ratio", "", "churn:src", "churn:plan", "ratio")
	buildMis := func(n *pdps.ReteNetwork, keys int) *pdps.Store {
		if err := n.AddRule(misorderedRule()); err != nil {
			log.Fatal(err)
		}
		s := pdps.NewStore()
		for k := 0; k < keys; k++ {
			n.Insert(s.Insert("task", map[string]pdps.Value{"k": pdps.Int(int64(k)), "done": pdps.Bool(false)}))
			for c := 0; c < width; c++ {
				n.Insert(s.Insert("wide0", map[string]pdps.Value{"k": pdps.Int(int64(k)), "v": pdps.Int(int64(c))}))
				n.Insert(s.Insert("wide1", map[string]pdps.Value{"k": pdps.Int(int64(k)), "v": pdps.Int(int64(c))}))
			}
			if k%16 == 0 {
				n.Insert(s.Insert("sel", map[string]pdps.Value{"k": pdps.Int(int64(k)), "hot": pdps.Bool(true)}))
			}
		}
		return s
	}
	const churnIters = 2000
	misRun := func(mk func() *pdps.ReteNetwork, keys int) (build, churn time.Duration) {
		n := mk()
		start := time.Now()
		s := buildMis(n, keys)
		build = time.Since(start)
		base := n.ConflictSet().Len()
		if want := (keys + 15) / 16 * width * width; base != want {
			log.Fatalf("e21(i): conflict set = %d, want %d", base, want)
		}
		start = time.Now()
		for i := 0; i < churnIters; i++ {
			k := int64(i%keys | 1) // odd keys: never hot, the common case
			w := s.Insert("wide0", map[string]pdps.Value{"k": pdps.Int(k), "v": pdps.Int(-1)})
			n.Insert(w)
			n.Remove(w)
		}
		churn = time.Since(start)
		if n.ConflictSet().Len() != base {
			log.Fatal("e21(i): churn leaked instantiations")
		}
		return build, churn
	}
	for _, keys := range []int{64, 256, 1024} {
		srcB, srcC := time.Duration(1<<62), time.Duration(1<<62)
		plnB, plnC := time.Duration(1<<62), time.Duration(1<<62)
		for rep := 0; rep < 3; rep++ {
			if b, c := misRun(pdps.NewSourceOrderReteNetwork, keys); true {
				srcB, srcC = min(srcB, b), min(srcC, c)
			}
			if b, c := misRun(pdps.NewReteNetwork, keys); true {
				plnB, plnC = min(plnB, b), min(plnC, c)
			}
		}
		fmt.Printf("  %-8d %2s %12v %12v %6.2fx %2s %12v %12v %6.2fx\n",
			keys, "",
			srcB.Round(time.Microsecond), plnB.Round(time.Microsecond), float64(srcB)/float64(plnB), "",
			srcC.Round(time.Microsecond), plnC.Round(time.Microsecond), float64(srcC)/float64(plnC))
	}

	fmt.Println("  (ii) beta-prefix sharing (8 rules, common 3-deep reordered prefix):")
	shareRules := func() []*pdps.Rule {
		var rules []*pdps.Rule
		for i := 0; i < 8; i++ {
			r := chainRule(3)
			r.Name = fmt.Sprintf("chain%d", i)
			r.Conditions = append(r.Conditions, pdps.Condition{
				Class: fmt.Sprintf("leaf%d", i),
				Tests: []pdps.AttrTest{{Attr: "k", Op: pdps.OpEq, Var: "x"}},
			})
			rules = append(rules, r)
		}
		return rules
	}
	shareRun := func(mk func() *pdps.ReteNetwork) (*pdps.ReteNetwork, time.Duration) {
		n := mk()
		for _, r := range shareRules() {
			if err := n.AddRule(r); err != nil {
				log.Fatal(err)
			}
		}
		s := pdps.NewStore()
		start := time.Now()
		for k := 0; k < 512; k++ {
			for c := 0; c < 3; c++ {
				n.Insert(s.Insert(fmt.Sprintf("c%d", c), map[string]pdps.Value{"k": pdps.Int(int64(k))}))
			}
		}
		for i := 0; i < churnIters; i++ {
			w := s.Insert("c0", map[string]pdps.Value{"k": pdps.Int(int64(i % 512))})
			n.Insert(w)
			n.Remove(w)
		}
		return n, time.Since(start)
	}
	fmt.Printf("  %-10s %10s %10s %12s %14s\n", "network", "joins", "betamems", "shared-beta", "load+churn")
	for _, row := range []struct {
		name string
		mk   func() *pdps.ReteNetwork
	}{{"rete-src", pdps.NewSourceOrderReteNetwork}, {"rete", pdps.NewReteNetwork}} {
		best := time.Duration(1 << 62)
		var topo *pdps.ReteNetwork
		for rep := 0; rep < 3; rep++ {
			n, d := shareRun(row.mk)
			if d < best {
				best = d
			}
			topo = n
		}
		t := topo.Topology()
		fmt.Printf("  %-10s %10d %10d %12d %14v\n", row.name, t.JoinNodes, t.MemNodes, t.SharedBeta, best.Round(time.Microsecond))
	}

	fmt.Printf("  (iii) run-time skew (width=%d, tiny=1/16): static plans tie, adaptive escapes:\n", width)
	skewRun := func(mk func() *pdps.ReteNetwork) (time.Duration, int64) {
		const keys = 512
		n := mk()
		if err := n.AddRule(skewedRule()); err != nil {
			log.Fatal(err)
		}
		s := pdps.NewStore()
		for k := 0; k < keys; k++ {
			for c := 0; c < width; c++ {
				n.Insert(s.Insert("big0", map[string]pdps.Value{"k": pdps.Int(int64(k)), "v": pdps.Int(int64(c))}))
				n.Insert(s.Insert("big1", map[string]pdps.Value{"k": pdps.Int(int64(k)), "v": pdps.Int(int64(c))}))
			}
			if k%16 == 0 {
				n.Insert(s.Insert("tiny", map[string]pdps.Value{"k": pdps.Int(int64(k))}))
			}
		}
		start := time.Now()
		for i := 0; i < churnIters; i++ {
			w := s.Insert("task", map[string]pdps.Value{"k": pdps.Int(int64(i%keys | 1)), "done": pdps.Bool(false)})
			n.Insert(w)
			n.ConflictSet() // the adaptive safe point
			n.Remove(w)
		}
		return time.Since(start), n.Replans()
	}
	adaptive := func() *pdps.ReteNetwork {
		n := pdps.NewReteNetwork()
		n.SetAdaptive(true)
		return n
	}
	fmt.Printf("  %-14s %14s %9s\n", "network", "churn", "replans")
	for _, row := range []struct {
		name string
		mk   func() *pdps.ReteNetwork
	}{{"rete-src", pdps.NewSourceOrderReteNetwork}, {"rete", pdps.NewReteNetwork}, {"rete+adaptive", adaptive}} {
		best, replans := time.Duration(1<<62), int64(0)
		for rep := 0; rep < 3; rep++ {
			d, r := skewRun(row.mk)
			if d < best {
				best = d
			}
			replans = r
		}
		fmt.Printf("  %-14s %14v %9d\n", row.name, best.Round(time.Microsecond), replans)
	}

	fmt.Println("  (iv) well-ordered guard (JoinHeavy chain, planner must keep source order):")
	guard := func(mk func() *pdps.ReteNetwork, keys int) time.Duration {
		n := mk()
		if err := n.AddRule(chainRule(4)); err != nil {
			log.Fatal(err)
		}
		s := pdps.NewStore()
		for k := 0; k < keys; k++ {
			for l := 1; l < 4; l++ {
				n.Insert(s.Insert(fmt.Sprintf("c%d", l), map[string]pdps.Value{"k": pdps.Int(int64(k))}))
			}
		}
		// Parts (i)-(iii) leave the heap large and trending; without a
		// collection here a GC cycle lands inside some timed loops and
		// not others, which at ~10ms per loop dwarfs the real difference.
		runtime.GC()
		start := time.Now()
		for i := 0; i < churnIters; i++ {
			w := s.Insert("c0", map[string]pdps.Value{"k": pdps.Int(int64(i % keys))})
			n.Insert(w)
			if n.ConflictSet().Len() != 1 {
				log.Fatal("e21(iv): chain did not match")
			}
			n.Remove(w)
		}
		return time.Since(start)
	}
	fmt.Printf("  %-8s %14s %14s %8s\n", "keys", "rete-src", "rete", "ratio")
	for _, keys := range []int{256, 1024} {
		srcT, plnT := time.Duration(1<<62), time.Duration(1<<62)
		// Alternate the measurement order across reps so allocator and
		// frequency drift cannot systematically favour either side.
		for rep := 0; rep < 6; rep++ {
			if rep%2 == 0 {
				srcT = min(srcT, guard(pdps.NewSourceOrderReteNetwork, keys))
				plnT = min(plnT, guard(pdps.NewReteNetwork, keys))
			} else {
				plnT = min(plnT, guard(pdps.NewReteNetwork, keys))
				srcT = min(srcT, guard(pdps.NewSourceOrderReteNetwork, keys))
			}
		}
		fmt.Printf("  %-8d %14v %14v %7.2fx\n", keys,
			srcT.Round(time.Microsecond), plnT.Round(time.Microsecond), float64(srcT)/float64(plnT))
	}

	// A live-engine pass over the misordered workload for the CI metric
	// artifact: the planned network's probe/scan counters document where
	// the speedup comes from.
	fmt.Println("  (v) live engine on JoinHeavyMisordered(256, 8):")
	fmt.Printf("  %-10s %12s %9s %10s %10s\n", "matcher", "elapsed", "firings", "probes", "scanned")
	for _, matcher := range []string{"rete-src", "rete"} {
		prog := pdps.JoinHeavyMisordered(256, 8)
		eng, err := pdps.NewSingleEngine(prog, pdps.Options{Matcher: matcher})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if want := 256 / 16; res.Firings != want {
			log.Fatalf("%s: firings = %d, want %d", matcher, res.Firings, want)
		}
		snap := eng.Metrics().Snapshot()
		fmt.Printf("  %-10s %12v %9d %10d %10d\n", matcher, elapsed.Round(time.Microsecond), res.Firings,
			snap.Counter("rete_index_probes_total"), snap.Counter("rete_scan_candidates_total"))
		dumpMetrics("e21", matcher, eng)
	}
}

// dumpPlans prints the compiled join plans of the E21 rule shapes
// (-rete-plan): source order on the left, the cost plan on the right.
func dumpPlans() {
	fmt.Println("  compiled plans (-rete-plan):")
	for _, row := range []struct {
		name string
		r    *pdps.Rule
	}{{"misordered", misorderedRule()}, {"skewed", skewedRule()}, {"well-ordered", chainRule(4)}} {
		src, pln := pdps.NewSourceOrderReteNetwork(), pdps.NewReteNetwork()
		if err := src.AddRule(row.r); err != nil {
			log.Fatal(err)
		}
		if err := pln.AddRule(row.r); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %-12s src  %s\n", row.name, src.Plans()[0])
		fmt.Printf("    %-12s plan %s\n", "", pln.Plans()[0])
	}
}
