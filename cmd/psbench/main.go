// Command psbench regenerates every quantitative artifact of the paper
// — the Section 3.3 execution-graph example (Figure 3.2), the lock
// compatibility matrix (Table 4.1), the commit/abort protocols of
// Figures 4.3–4.4, the speed-up examples of Figures 5.1–5.4 and
// Example 5.1 — and runs the empirical validations of Theorems 1 and 2
// plus the factor sweeps of Section 5. Its output is the source of
// EXPERIMENTS.md.
//
// Usage: psbench [-experiment all|e1|e2|...|e22] [-seeds N]
//
// With -cpuprofile/-memprofile, a pprof CPU profile is recorded over
// the selected experiments and a heap profile is written on exit, so
// match-phase hot spots (the §2 premise) are attributable to nodes.
//
// With -metrics, the live-engine experiments (E12, and E13's live
// counterpart sweep) annotate every run with figures read from the
// engine's metrics registry — lock conflicts by Table 4.1 mode pair,
// commit-time Rc victims, retries, lock-wait and commit-latency
// histograms — so the EXPERIMENTS.md numbers are regenerable from
// live counters rather than the run summary alone. With -metrics-dir
// DIR, each such run's full metric snapshot is also written to
// DIR/<experiment>-<run>.json.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pdps"
)

var (
	seeds      = flag.Int("seeds", 25, "randomized trials per theorem validation")
	metricsOn  = flag.Bool("metrics", false, "annotate live-engine experiments with metric-registry counters")
	metricsDir = flag.String("metrics-dir", "", "write each live run's full metric snapshot as JSON into this directory")
	cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to this file")
	memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	retePlan   = flag.Bool("rete-plan", false, "dump the compiled Rete join plans alongside the E21 results")
)

// dumpMetrics reports one live run's registry-derived figures and, with
// -metrics-dir, archives the full snapshot as <dir>/<id>-<run>.json.
// It is a no-op unless -metrics or -metrics-dir is set, so the default
// psbench output (the EXPERIMENTS.md source) is unchanged.
func dumpMetrics(id, run string, eng pdps.Engine) {
	if !*metricsOn && *metricsDir == "" {
		return
	}
	snap := eng.Metrics().Snapshot()
	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			log.Fatal(err)
		}
		b, err := snap.MarshalIndent()
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*metricsDir, fmt.Sprintf("%s-%s.json", id, run))
		if err := os.WriteFile(path, b, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if !*metricsOn {
		return
	}
	var conflicts int64
	for _, p := range snap.Counters {
		if p.Name == "lock_conflicts_total" {
			conflicts += p.Value
		}
	}
	line := fmt.Sprintf("    metrics[%s]: conflicts=%d rc_victims=%d deadlocks=%d retries=%d",
		run, conflicts,
		snap.Counter("lock_rc_victims_total"),
		snap.Counter("lock_deadlocks_total"),
		snap.Counter("engine_retries_total"))
	if h, ok := snap.Histogram("lock_wait_ns"); ok && h.Count > 0 {
		line += fmt.Sprintf(" lock_wait{n=%d p50=%v p99=%v}",
			h.Count, time.Duration(h.Quantile(0.5)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)).Round(time.Microsecond))
	}
	if h, ok := snap.Histogram("engine_commit_latency_ns"); ok && h.Count > 0 {
		line += fmt.Sprintf(" commit_latency{mean=%v p99=%v}",
			time.Duration(h.Mean()).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)).Round(time.Microsecond))
	}
	fmt.Println(line)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("psbench: ")
	which := flag.String("experiment", "all", "experiment id (e1..e22) or all")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	experiments := []struct {
		id   string
		name string
		run  func()
	}{
		{"e1", "Figure 3.2 — execution graph and ES_single (Section 3.3)", e1},
		{"e2", "Table 4.1 — lock compatibility matrix", e2},
		{"e3", "Figure 4.3 — Rc/Wa commit-first protocols", e3},
		{"e4", "Figure 4.4 — circular conflict dependency", e4},
		{"e5", "Figure 5.1 — base case speed-up", e5},
		{"e6", "Figure 5.2 — degree-of-conflict variation", e6},
		{"e7", "Figure 5.3 — execution-time variation", e7},
		{"e8", "Figure 5.4 — processor-count variation", e8},
		{"e9", "Example 5.1 — uniprocessor multi-thread inequality", e9},
		{"e10", "Theorem 1 — static approach consistency (randomized)", e10},
		{"e11", "Theorem 2 / §4.3 — dynamic approach consistency (randomized)", e11},
		{"e12", "§4.3 — lock scheme ablation (2PL vs Rc/Ra/Wa vs single)", e12},
		{"e13", "§5 — speed-up factor sweeps (conflict, Np, times)", e13},
		{"e14", "§2 — match algorithm comparison (Rete vs TREAT vs naive)", e14},
		{"e15", "§4.3 — writer latency behind long condition-readers", e15},
		{"e16", "§4.3 — abort policy ablation (rule (ii) vs re-evaluate)", e16},
		{"e17", "§2 — indexed match network and sharded delta pipeline", e17},
		{"e18", "§4 — hybrid consistency: lock elision, class locks, group commit", e18},
		{"e19", "§6 — durability tax and group-commit fsync amortization", e19},
		{"e21", "§2 — cost-based Rete compilation: join planning, beta sharing, adaptive replan", e21},
		{"e22", "§2 — shared alpha discrimination network: hash routing, factoring, GC", e22},
	}

	ran := false
	for _, e := range experiments {
		if *which != "all" && *which != e.id {
			continue
		}
		ran = true
		fmt.Printf("== %s: %s ==\n", strings.ToUpper(e.id), e.name)
		e.run()
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(2)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
}

// e1 rebuilds the Section 3.3 execution graph. The paper's scan is
// illegible where the add/delete sets are printed, so the fixture is a
// documented reconstruction; the artifact reproduced is the
// construction itself: the graph, its root-originating paths, and the
// prefix-closed ES_single.
func e1() {
	sys := pdps.Fig32System()
	fmt.Printf("initial conflict set: {%s}\n", strings.Join(sys.Initial(), ","))
	g := sys.BuildGraph(16)
	fmt.Printf("execution graph: %d states (complete: %v)\n", len(g.Nodes), !g.Truncated)
	done := sys.CompletedSequences(16)
	fmt.Printf("completed execution sequences (%d):\n", len(done))
	for _, seq := range done {
		fmt.Printf("  %s\n", strings.Join(seq, " "))
	}
	all := sys.Sequences(16, false)
	fmt.Printf("|ES_single| including prefixes: %d (prefix-closed: %v)\n",
		len(all), prefixClosed(all))
}

func prefixClosed(seqs [][]string) bool {
	seen := make(map[string]bool, len(seqs))
	for _, s := range seqs {
		seen[strings.Join(s, " ")] = true
	}
	for _, s := range seqs {
		for i := 1; i < len(s); i++ {
			if !seen[strings.Join(s[:i], " ")] {
				return false
			}
		}
	}
	return true
}

// e2 prints Table 4.1 for the improved scheme, plus the 2PL matrix for
// contrast, directly from the lock manager's Compatible function.
func e2() {
	modes := []pdps.LockMode{pdps.Rc, pdps.Ra, pdps.Wa}
	for _, scheme := range []pdps.Scheme{pdps.SchemeRcRaWa, pdps.Scheme2PL} {
		fmt.Printf("scheme %s (held row, requested column):\n", scheme)
		fmt.Printf("      %4s %4s %4s\n", "Rc", "Ra", "Wa")
		for _, held := range modes {
			fmt.Printf("  %s: ", held)
			for _, req := range modes {
				mark := "N"
				if pdps.LockCompatible(scheme, held, req) {
					mark = "Y"
				}
				fmt.Printf("%4s", mark)
			}
			fmt.Println()
		}
	}
	fmt.Println("paper (Table 4.1): Rc row all Y (including Wa!), Ra row Y Y N, Wa row all N")
}

// fig43Program is the two-production scenario of Figure 4.3: pi writes
// q; pj only reads q (through its condition) and writes elsewhere.
func fig43Program() pdps.Program {
	return pdps.MustParse(`
(p pi
  (q ^hot true)
  -->
  (modify 1 ^hot false))
(p pj
  (q ^hot true)
  (out ^n <n>)
  -->
  (modify 2 ^n (+ <n> 1)))
(wme q ^hot true)
(wme out ^n 0)
`)
}

// e3 demonstrates both Figure 4.3 interleavings by skewing the two
// productions' action times: (a) the reader pj commits first and both
// commit — serial order pj,pi; (b) the writer pi commits first and pj
// is aborted as the Rc victim.
func e3() {
	scenario := func(label string, piDelay, pjDelay time.Duration, wantAborts bool) {
		prog := fig43Program()
		eng, err := pdps.NewParallelEngine(prog, pdps.SchemeRcRaWa, pdps.Options{
			Np:        2,
			RuleDelay: map[string]time.Duration{"pi": piDelay, "pj": pjDelay},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
			log.Fatalf("%s: inconsistent: %v", label, err)
		}
		var commits []string
		for _, c := range res.Log.Commits() {
			commits = append(commits, c.Rule)
		}
		fmt.Printf("  %s: commits=%v aborts=%d (consistent: yes)\n", label, commits, res.Aborts)
		_ = wantAborts
	}
	fmt.Println("(a) reader pj commits first -> both commit, serial order pj pi:")
	scenario("a", 80*time.Millisecond, 1*time.Millisecond, false)
	fmt.Println("(b) writer pi commits first -> pj forced to abort (rule ii):")
	scenario("b", 1*time.Millisecond, 80*time.Millisecond, true)
}

// e4 runs the Figure 4.4 circular conflict under both schemes: exactly
// one of the two productions commits, whichever mechanism resolves it
// (deadlock victim under 2PL, commit-time abort under Rc/Ra/Wa).
func e4() {
	prog := pdps.MustParse(`
(p pi
  (q ^hot true)
  (r ^hot true)
  -->
  (modify 2 ^hot false))
(p pj
  (r ^hot true)
  (q ^hot true)
  -->
  (modify 2 ^hot false))
(wme q ^hot true)
(wme r ^hot true)
`)
	for _, scheme := range []pdps.Scheme{pdps.Scheme2PL, pdps.SchemeRcRaWa} {
		eng, err := pdps.NewParallelEngine(prog, scheme, pdps.Options{
			Np: 2,
			// Hold the Rc locks for a while so both productions are
			// inside the Figure 4.4 window before requesting Wa.
			CondDelay: map[string]time.Duration{"pi": 25 * time.Millisecond, "pj": 25 * time.Millisecond},
			RuleDelay: map[string]time.Duration{"pi": 5 * time.Millisecond, "pj": 5 * time.Millisecond},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
			log.Fatalf("%v: inconsistent: %v", scheme, err)
		}
		fmt.Printf("  scheme %-7s: commits=%d aborts=%d deadlocks=%d (paper: exactly one commits)\n",
			scheme, res.Firings, res.Aborts, lockDeadlocks(eng))
	}
}

func lockDeadlocks(eng pdps.Engine) int64 {
	type statser interface{ LockStats() pdps.LockStats }
	if s, ok := eng.(statser); ok {
		return s.LockStats().Deadlocks
	}
	return 0
}

func figRow(name string, sys *pdps.System, np, wantSingle, wantMulti int, wantSpeedup float64) {
	res, err := pdps.Simulate(sys, pdps.SimConfig{Np: np})
	if err != nil {
		log.Fatal(err)
	}
	status := "MATCH"
	if res.TSingle != wantSingle || res.TMulti != wantMulti {
		status = "MISMATCH"
	}
	fmt.Printf("  %s: sigma=%v\n", name, res.Sigma())
	fmt.Printf("    paper:    T_single=%d T_multi=%d speedup=%.2f\n", wantSingle, wantMulti, wantSpeedup)
	fmt.Printf("    measured: T_single=%d T_multi=%d speedup=%.2f  [%s]\n",
		res.TSingle, res.TMulti, res.Speedup(), status)
	fmt.Print(indent(res.Gantt(), "    "))
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pre + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func e5() { figRow("fig 5.1 (Np=4)", pdps.Fig51System(), 4, 9, 4, 2.25) }
func e6() { figRow("fig 5.2 (Np=4, higher conflict)", pdps.Fig52System(), 4, 5, 3, 1.67) }
func e7() { figRow("fig 5.3 (Np=4, T(P2)+1)", pdps.Fig53System(), 4, 10, 4, 2.5) }
func e8() { figRow("fig 5.4 (Np=3)", pdps.Fig51System(), pdps.Fig54Np(), 9, 6, 1.5) }

// e9 sweeps the abort fraction f of Example 5.1 on the base case.
func e9() {
	res, err := pdps.Simulate(pdps.Fig51System(), pdps.SimConfig{Np: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  T_single = %d, aborted work available to waste = %d units\n",
		res.TSingle, res.WastedWork())
	fmt.Printf("  %6s %14s %s\n", "f", "T_multi(uni)", "single-thread no worse?")
	for _, f := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.99} {
		tm := res.UniprocessorMultiTime(f)
		fmt.Printf("  %6.2f %14.2f %v\n", f, tm, tm >= float64(res.TSingle))
	}
}

// e10 validates Theorem 1 empirically: randomized programs under the
// static-partition engine; every commit sequence must replay as a
// single-thread execution.
func e10() {
	pass := 0
	for seed := int64(0); seed < int64(*seeds); seed++ {
		prog := pdps.RandomProgram(seed, 4, 24)
		eng, err := pdps.NewStaticEngine(prog, pdps.Options{Np: 4, Verify: true})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}
		if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
			log.Fatalf("seed %d: INCONSISTENT: %v", seed, err)
		}
		pass++
	}
	fmt.Printf("  %d/%d randomized static-partition runs semantically consistent\n", pass, *seeds)
}

// e11 validates Theorem 2 and the Section 4.3 scheme: randomized
// programs under the dynamic engine with both lock schemes and both
// abort policies.
func e11() {
	for _, scheme := range []pdps.Scheme{pdps.Scheme2PL, pdps.SchemeRcRaWa} {
		for _, policy := range []pdps.AbortPolicy{pdps.AbortAlways, pdps.AbortReevaluate} {
			pass := 0
			for seed := int64(0); seed < int64(*seeds); seed++ {
				prog := pdps.SharedCounter(3+int(seed%5), 2+int(seed%3))
				eng, err := pdps.NewParallelEngine(prog, scheme, pdps.Options{
					Np: 4, Verify: true, AbortPolicy: policy,
				})
				if err != nil {
					log.Fatal(err)
				}
				res, err := eng.Run()
				if err != nil {
					log.Fatalf("scheme %v seed %d: %v", scheme, seed, err)
				}
				if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
					log.Fatalf("scheme %v seed %d: INCONSISTENT: %v", scheme, seed, err)
				}
				pass++
			}
			fmt.Printf("  scheme=%-7s policy=%-10s: %d/%d runs semantically consistent\n",
				scheme, policy, pass, *seeds)
		}
	}
}

// e12 compares wall-clock time of single vs 2PL vs Rc/Ra/Wa on a
// workload with long actions (per-rule delays), where the improved
// scheme's liberal Rc locks should win, per Section 4.3.
func e12() {
	const parts, stages, np = 8, 3, 8
	delay := 3 * time.Millisecond
	mkDelays := func(prog pdps.Program) map[string]time.Duration {
		d := make(map[string]time.Duration, len(prog.Rules))
		for _, r := range prog.Rules {
			d[r.Name] = delay
		}
		return d
	}
	type mk func() (string, pdps.Engine, pdps.Program)
	builders := []mk{
		func() (string, pdps.Engine, pdps.Program) {
			prog := pdps.Pipeline(parts, stages)
			e, err := pdps.NewSingleEngine(prog, pdps.Options{RuleDelay: mkDelays(prog)})
			if err != nil {
				log.Fatal(err)
			}
			return "single", e, prog
		},
		func() (string, pdps.Engine, pdps.Program) {
			prog := pdps.Pipeline(parts, stages)
			e, err := pdps.NewParallelEngine(prog, pdps.Scheme2PL, pdps.Options{Np: np, RuleDelay: mkDelays(prog)})
			if err != nil {
				log.Fatal(err)
			}
			return "parallel-2pl", e, prog
		},
		func() (string, pdps.Engine, pdps.Program) {
			prog := pdps.Pipeline(parts, stages)
			e, err := pdps.NewParallelEngine(prog, pdps.SchemeRcRaWa, pdps.Options{Np: np, RuleDelay: mkDelays(prog)})
			if err != nil {
				log.Fatal(err)
			}
			return "parallel-rcrawa", e, prog
		},
		func() (string, pdps.Engine, pdps.Program) {
			prog := pdps.Pipeline(parts, stages)
			e, err := pdps.NewStaticEngine(prog, pdps.Options{Np: np, RuleDelay: mkDelays(prog)})
			if err != nil {
				log.Fatal(err)
			}
			return "static", e, prog
		},
	}
	fmt.Printf("  workload: pipeline parts=%d stages=%d, action cost %v, np=%d\n", parts, stages, delay, np)
	fmt.Printf("  %-16s %9s %8s %8s %12s %9s\n", "engine", "commits", "aborts", "skips", "elapsed", "speedup")
	var base time.Duration
	for _, b := range builders {
		name, eng, prog := b()
		start := time.Now()
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
			log.Fatalf("%s: INCONSISTENT: %v", name, err)
		}
		if name == "single" {
			base = elapsed
		}
		fmt.Printf("  %-16s %9d %8d %8d %12v %9.2f\n",
			name, res.Firings, res.Aborts, res.Skips,
			elapsed.Round(time.Millisecond), float64(base)/float64(elapsed))
		dumpMetrics("e12", name, eng)
	}
}

// e13 sweeps the three speed-up factors of Section 5 on the simulator.
func e13() {
	fmt.Println("  (i) degree of conflict (12 productions, Np=12):")
	fmt.Printf("  %10s %9s %8s %8s\n", "conflict", "T_single", "T_multi", "speedup")
	for _, degree := range []int{0, 1, 2, 4, 8, 11} {
		res, err := pdps.Simulate(pdps.ConflictChain(12, degree, 3), pdps.SimConfig{Np: 12})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %10d %9d %8d %8.2f\n", degree, res.TSingle, res.TMulti, res.Speedup())
	}
	fmt.Println("  (ii) processors (12 independent productions):")
	fmt.Printf("  %10s %9s %8s %8s\n", "Np", "T_single", "T_multi", "speedup")
	for _, np := range []int{1, 2, 3, 4, 6, 12} {
		res, err := pdps.Simulate(pdps.ConflictChain(12, 0, 3), pdps.SimConfig{Np: np})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %10d %9d %8d %8.2f\n", np, res.TSingle, res.TMulti, res.Speedup())
	}
	fmt.Println("  (iii) execution time of one production (fig 5.1 base, varying T(P2)):")
	fmt.Printf("  %10s %9s %8s %8s\n", "T(P2)", "T_single", "T_multi", "speedup")
	for _, t2 := range []int{1, 2, 3, 4, 5} {
		sys, err := pdps.NewSystem([]*pdps.AbstractProduction{
			{Name: "P1", Time: 5},
			{Name: "P2", Time: t2, Del: []string{"P1"}},
			{Name: "P3", Time: 2},
			{Name: "P4", Time: 4},
		}, []string{"P1", "P2", "P3", "P4"})
		if err != nil {
			log.Fatal(err)
		}
		res, err := pdps.Simulate(sys, pdps.SimConfig{Np: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %10d %9d %8d %8.2f\n", t2, res.TSingle, res.TMulti, res.Speedup())
	}
	if *metricsOn || *metricsDir != "" {
		e13Live()
	}
}

// e13Live is the live-engine counterpart of the Section 5 sweeps: the
// simulator tables above predict speed-ups on abstract productions,
// while this sweep measures the same two factors — processor count and
// degree of conflict — on real engines and reads the outcome from the
// metrics registry, so each table row is backed by an archivable
// snapshot.
func e13Live() {
	delay := 2 * time.Millisecond
	run := func(runName string, prog pdps.Program, np int) {
		d := make(map[string]time.Duration, len(prog.Rules))
		for _, r := range prog.Rules {
			d[r.Name] = delay
		}
		eng, err := pdps.NewParallelEngine(prog, pdps.SchemeRcRaWa, pdps.Options{Np: np, RuleDelay: d})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
			log.Fatalf("%s: INCONSISTENT: %v", runName, err)
		}
		fmt.Printf("  %-16s %9d %8d %12v\n", runName, res.Firings, res.Aborts, elapsed.Round(time.Millisecond))
		dumpMetrics("e13", runName, eng)
	}
	fmt.Println("  live counterpart (Rc/Ra/Wa engine, per-rule action cost", delay, "):")
	fmt.Printf("  %-16s %9s %8s %12s\n", "run", "commits", "aborts", "elapsed")
	for _, np := range []int{1, 2, 4, 8} {
		run(fmt.Sprintf("np%d", np), pdps.Pipeline(8, 3), np)
	}
	for _, workers := range []int{2, 4, 8} {
		run(fmt.Sprintf("conflict%d", workers), pdps.SharedCounter(workers, 3), 8)
	}
}

// e15 demonstrates the motivation for the improved scheme (Section
// 4.3): "read locks acquired for evaluating the LHS are held more
// conservatively than necessary while other productions ready for
// execution must wait for their release". Several readers evaluate
// long conditions over a shared tuple q while a short writer wants to
// update q. Under 2PL the writer's Wa waits out every reader; under
// Rc/Ra/Wa it is granted immediately and the readers become commit-time
// victims. The measured quantity is the writer's commit latency.
func e15() {
	const readers = 4
	hold := 40 * time.Millisecond
	build := func() pdps.Program {
		src := `
(p writer
  (q ^hot true)
  -->
  (modify 1 ^hot false))
`
		prog := pdps.MustParse(src)
		for i := 0; i < readers; i++ {
			prog.Rules = append(prog.Rules, &pdps.Rule{
				Name: fmt.Sprintf("reader%d", i),
				Conditions: []pdps.Condition{
					{Class: "q", Tests: []pdps.AttrTest{{Attr: "hot", Op: pdps.OpEq, Const: pdps.Bool(true)}}},
					{Class: "job", Tests: []pdps.AttrTest{
						{Attr: "id", Op: pdps.OpEq, Const: pdps.Int(int64(i))},
						{Attr: "done", Op: pdps.OpEq, Const: pdps.Bool(false)},
					}},
				},
				Actions: []pdps.Action{{Kind: pdps.ActModify, CE: 1, Assigns: []pdps.AttrAssign{
					{Attr: "done", Expr: pdps.ConstExpr{Val: pdps.Bool(true)}}}}},
			})
			prog.WMEs = append(prog.WMEs, pdps.InitialWME{Class: "job",
				Attrs: map[string]pdps.Value{"id": pdps.Int(int64(i)), "done": pdps.Bool(false)}})
		}
		prog.WMEs = append(prog.WMEs, pdps.InitialWME{Class: "q",
			Attrs: map[string]pdps.Value{"hot": pdps.Bool(true)}})
		return prog
	}
	fmt.Printf("  %d readers hold Rc(q) for %v; writer wants Wa(q)\n", readers, hold)
	fmt.Printf("  %-8s %16s %9s %8s\n", "scheme", "writer latency", "commits", "aborts")
	for _, scheme := range []pdps.Scheme{pdps.Scheme2PL, pdps.SchemeRcRaWa} {
		prog := build()
		cond := map[string]time.Duration{"writer": 5 * time.Millisecond}
		for i := 0; i < readers; i++ {
			cond[fmt.Sprintf("reader%d", i)] = hold
		}
		eng, err := pdps.NewParallelEngine(prog, scheme, pdps.Options{
			Np: readers + 1, CondDelay: cond,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
			log.Fatalf("%v: inconsistent: %v", scheme, err)
		}
		events := res.Log.Events()
		var start, writerCommit time.Time
		if len(events) > 0 {
			start = events[0].At
		}
		for _, e := range res.Log.Commits() {
			if e.Rule == "writer" {
				writerCommit = e.At
				break
			}
		}
		lat := writerCommit.Sub(start)
		fmt.Printf("  %-8s %16v %9d %8d\n",
			scheme, lat.Round(time.Millisecond), res.Firings, res.Aborts)
	}
	fmt.Println("  (2PL: writer waits out the readers; Rc/Ra/Wa: writer commits at once,")
	fmt.Println("   readers abort and re-fire against the new q — the Section 4.3 trade)")
}

// e16 compares the paper's unconditional rule (ii) ("if Pi reaches the
// commit point first, Pj must be forced to abort") against the noted
// alternative of re-evaluating the victim's condition first. Workload:
// slow job firings hold tuple-level Rc locks on the job class while a
// fast clock rule keeps MAKING new (already-done) job tuples — a
// relation-level Wa on the class. The insert never falsifies a running
// job's condition, so AbortReevaluate spares every victim that
// AbortAlways kills and re-runs.
func e16() {
	mk := func() pdps.Program {
		prog := pdps.MustParse(`
(p tick
  (clock ^n <t>)
  (clock ^n < 5)
  -->
  (modify 1 ^n (+ <t> 1))
  (make job ^id (+ 100 <t>) ^done true))
`)
		for i := 0; i < 8; i++ {
			// Jobs READ their job tuple (pure Rc — they write only the
			// slot class), so the clock's relation-level Wa on "job"
			// makes every running job an Rc victim at tick commit.
			prog.Rules = append(prog.Rules, &pdps.Rule{
				Name: fmt.Sprintf("job%d", i),
				Conditions: []pdps.Condition{
					{Class: "job", Tests: []pdps.AttrTest{
						{Attr: "id", Op: pdps.OpEq, Const: pdps.Int(int64(i))},
						{Attr: "done", Op: pdps.OpEq, Const: pdps.Bool(false)},
					}},
					{Class: "slot", Tests: []pdps.AttrTest{
						{Attr: "id", Op: pdps.OpEq, Const: pdps.Int(int64(i))},
						{Attr: "used", Op: pdps.OpEq, Const: pdps.Bool(false)},
					}},
				},
				Actions: []pdps.Action{{Kind: pdps.ActModify, CE: 1, Assigns: []pdps.AttrAssign{
					{Attr: "used", Expr: pdps.ConstExpr{Val: pdps.Bool(true)}}}}},
			})
			prog.WMEs = append(prog.WMEs,
				pdps.InitialWME{Class: "job",
					Attrs: map[string]pdps.Value{"id": pdps.Int(int64(i)), "done": pdps.Bool(false)}},
				pdps.InitialWME{Class: "slot",
					Attrs: map[string]pdps.Value{"id": pdps.Int(int64(i)), "used": pdps.Bool(false)}})
		}
		prog.WMEs = append(prog.WMEs, pdps.InitialWME{Class: "clock",
			Attrs: map[string]pdps.Value{"n": pdps.Int(0)}})
		return prog
	}
	// The clock evaluates its condition for a while before taking its
	// relation-level Wa, so the jobs are already holding Rc and deep in
	// their actions when it commits — the Figure 4.3(b) timing.
	cond := map[string]time.Duration{"tick": 4 * time.Millisecond}
	delays := map[string]time.Duration{"tick": time.Millisecond}
	for i := 0; i < 8; i++ {
		delays[fmt.Sprintf("job%d", i)] = 8 * time.Millisecond
	}
	fmt.Printf("  %-12s %9s %8s %8s %12s\n", "policy", "commits", "aborts", "skips", "elapsed")
	for _, policy := range []pdps.AbortPolicy{pdps.AbortAlways, pdps.AbortReevaluate} {
		prog := mk()
		eng, err := pdps.NewParallelEngine(prog, pdps.SchemeRcRaWa, pdps.Options{
			Np: 10, RuleDelay: delays, CondDelay: cond, AbortPolicy: policy, Verify: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
			log.Fatalf("%v: inconsistent: %v", policy, err)
		}
		fmt.Printf("  %-12s %9d %8d %8d %12v\n",
			policy, res.Firings, res.Aborts, res.Skips, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("  (the clock's inserts never falsify a running job's condition, so the")
	fmt.Println("   reevaluate policy spares the Rc victims that rule (ii) kills and re-runs)")
}

// e14 times the same program under the three matchers.
func e14() {
	fmt.Printf("  %-8s %12s %9s\n", "matcher", "elapsed", "firings")
	for _, matcher := range []string{"rete", "treat", "naive"} {
		prog := pdps.Pipeline(120, 6)
		eng, err := pdps.NewSingleEngine(prog, pdps.Options{Matcher: matcher})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %12v %9d\n", matcher, time.Since(start).Round(time.Microsecond), res.Firings)
	}
}

// chainRule joins depth classes c0..c{depth-1} on one shared key
// attribute — every non-first condition element carries exactly one
// indexable equality test.
func chainRule(depth int) *pdps.Rule {
	r := &pdps.Rule{Name: "chain", Actions: []pdps.Action{{Kind: pdps.ActHalt}}}
	for i := 0; i < depth; i++ {
		r.Conditions = append(r.Conditions, pdps.Condition{
			Class: fmt.Sprintf("c%d", i),
			Tests: []pdps.AttrTest{{Attr: "k", Op: pdps.OpEq, Var: "x"}},
		})
	}
	return r
}

// e17 measures the indexed match network end to end. Part (i) runs
// the match-bound JoinHeavy workload under the hashed-memory Rete
// ("rete"), the pre-index linear baseline ("rete-linear"), TREAT and
// naive, reading the probe/scan counters that attribute the win to
// the indexes: the indexed network answers its right/left activations
// from single-entry buckets while the linear network walks whole
// memories (rete_scan_candidates_total counts the walked entries).
// Part (ii) runs the dynamic engine with a sharded matcher and reads
// the refresh-path counters: with per-shard journaling propagated
// through the merge, Parallel.refresh must take the journal-drain
// branch (engine_refresh_delta_total) rather than snapshot
// reconciliation, at every shard count.
func e17() {
	const depth = 4
	joinRun := func(matcher string, keys int) (time.Duration, pdps.Engine) {
		prog := pdps.JoinHeavy(keys, depth)
		eng, err := pdps.NewSingleEngine(prog, pdps.Options{Matcher: matcher})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if res.Firings != keys {
			log.Fatalf("%s: firings = %d, want %d", matcher, res.Firings, keys)
		}
		return elapsed, eng
	}
	joinRun("rete", 60) // warm-up: allocator and scheduler state
	const keys = 120
	fmt.Printf("  (i) match-bound deep join (JoinHeavy keys=%d depth=%d, single engine):\n", keys, depth)
	fmt.Printf("  %-12s %12s %10s %8s %10s\n", "matcher", "elapsed", "probes", "scans", "scanned")
	for _, matcher := range []string{"rete", "rete-linear", "treat", "naive"} {
		elapsed, eng := joinRun(matcher, keys)
		snap := eng.Metrics().Snapshot()
		fmt.Printf("  %-12s %12v %10d %8d %10d\n",
			matcher, elapsed.Round(time.Microsecond),
			snap.Counter("rete_index_probes_total"),
			snap.Counter("rete_index_scans_total"),
			snap.Counter("rete_scan_candidates_total"))
		if matcher == "rete" {
			if h, ok := snap.Histogram("rete_index_bucket_size"); ok && h.Count > 0 {
				fmt.Printf("    bucket size: n=%d mean=%.2f p99<=%d\n",
					h.Count, float64(h.Sum)/float64(h.Count), h.Quantile(0.99))
			}
		}
		dumpMetrics("e17", matcher, eng)
	}
	// The engine rows above bundle match cost with per-cycle engine
	// work, so (i') times the matchers alone: resident reference
	// memories of `keys` tuples per chain level, then a churn of token
	// activations through the four-deep join. The linear network scans
	// each opposite memory in full per activation (O(keys) per level),
	// the indexed network probes single-entry buckets — the Doorenbos
	// argument, measured. Each cell is the best of three alternating
	// passes, so allocator and GC drift cannot favour either side.
	fmt.Println("  (i') matcher-only churn through the deep join (best of 3):")
	fmt.Printf("  %-8s %14s %14s %8s\n", "keys", "rete", "rete-linear", "ratio")
	const churnIters = 2000
	churn := func(mk func() pdps.Matcher, keys int) time.Duration {
		m := mk()
		if err := m.AddRule(chainRule(depth)); err != nil {
			log.Fatal(err)
		}
		s := pdps.NewStore()
		for k := 0; k < keys; k++ {
			for l := 1; l < depth; l++ {
				m.Insert(s.Insert(fmt.Sprintf("c%d", l), map[string]pdps.Value{"k": pdps.Int(int64(k))}))
			}
		}
		start := time.Now()
		for i := 0; i < churnIters; i++ {
			w := s.Insert("c0", map[string]pdps.Value{"k": pdps.Int(int64(i % keys))})
			m.Insert(w)
			if m.ConflictSet().Len() != 1 {
				log.Fatal("chain did not match")
			}
			m.Remove(w)
		}
		return time.Since(start)
	}
	for _, k := range []int{64, 256, 1024} {
		idxT, linT := time.Duration(1<<62), time.Duration(1<<62)
		for rep := 0; rep < 3; rep++ {
			if d := churn(func() pdps.Matcher { return pdps.NewReteNetwork() }, k); d < idxT {
				idxT = d
			}
			if d := churn(func() pdps.Matcher { return pdps.NewLinearReteNetwork() }, k); d < linT {
				linT = d
			}
		}
		fmt.Printf("  %-8d %14v %14v %7.2fx\n",
			k, idxT.Round(time.Microsecond), linT.Round(time.Microsecond),
			float64(linT)/float64(idxT))
	}
	fmt.Println("  (ii) sharded delta pipeline (Pipeline 64x4, Rc/Ra/Wa, np=4):")
	fmt.Printf("  %-8s %12s %9s %9s %7s %s\n", "shards", "elapsed", "firings", "snapshot", "delta", "merge-batch")
	for _, shards := range []int{1, 2, 4} {
		prog := pdps.Pipeline(64, 4)
		eng, err := pdps.NewParallelEngine(prog, pdps.SchemeRcRaWa, pdps.Options{Np: 4, MatchShards: shards})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
			log.Fatalf("shards=%d: INCONSISTENT: %v", shards, err)
		}
		snap := eng.Metrics().Snapshot()
		merge := "-"
		if h, ok := snap.Histogram("match_shard_merge_batch"); ok && h.Count > 0 {
			merge = fmt.Sprintf("n=%d mean=%.1f", h.Count, float64(h.Sum)/float64(h.Count))
		}
		fmt.Printf("  %-8d %12v %9d %9d %7d %s\n",
			shards, elapsed.Round(time.Microsecond), res.Firings,
			snap.Counter("engine_refresh_snapshot_total"),
			snap.Counter("engine_refresh_delta_total"), merge)
		dumpMetrics("e17", fmt.Sprintf("shards%d", shards), eng)
	}
	fmt.Println("  (journal-drain refreshes dominating at every shard count is the")
	fmt.Println("   acceptance check: TrackChanges propagates through the merge)")
}
