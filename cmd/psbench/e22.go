package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"pdps"
)

// fanoutRuleSet is the ManyRulesFanout rule shape at network level:
// nRules single-CE rules over one event class, each testing a category
// (shared by nRules/16 rules), a priority band and a live flag (shared
// by all). Every test is a hash-routable equality constant, so the
// discrimination network answers an assert with one probe per
// attribute regardless of nRules, while the linear alpha walk
// re-evaluates all nRules predicate closures.
func fanoutRuleSet(nRules int) []*pdps.Rule {
	cats := 16
	if nRules < cats {
		cats = nRules
	}
	rules := make([]*pdps.Rule, nRules)
	for r := range rules {
		rules[r] = &pdps.Rule{
			Name: fmt.Sprintf("fan%d", r),
			Conditions: []pdps.Condition{{
				Class: "event",
				Tests: []pdps.AttrTest{
					{Attr: "cat", Op: pdps.OpEq, Const: pdps.Int(int64(r % cats))},
					{Attr: "pri", Op: pdps.OpEq, Const: pdps.Int(int64(r / cats))},
					{Attr: "live", Op: pdps.OpEq, Const: pdps.Bool(true)},
				},
			}},
			Actions: []pdps.Action{{Kind: pdps.ActRemove, CE: 0}},
		}
	}
	return rules
}

// fanoutPool pre-builds the churn events: every fourth is hot (owned
// by exactly one rule), the rest are cold — a priority band no rule
// tests, the common case a production system's alpha network must
// reject cheaply.
func fanoutPool(s *pdps.Store, nRules int) []*pdps.WME {
	events := make([]*pdps.WME, 64)
	for i := range events {
		if i%4 == 0 {
			r := i % nRules
			events[i] = s.Insert("event", map[string]pdps.Value{
				"cat": pdps.Int(int64(r % 16)), "pri": pdps.Int(int64(r / 16)), "live": pdps.Bool(true)})
			continue
		}
		events[i] = s.Insert("event", map[string]pdps.Value{
			"cat": pdps.Int(int64(i % 16)), "pri": pdps.Int(int64(nRules)), "live": pdps.Bool(true)})
	}
	return events
}

// e22 measures the shared alpha discrimination network. Part (i) is
// the headline: assert/retract churn through R single-CE rules,
// linear alpha walk against hash-routed discrimination — the linear
// cost grows with R, the routed cost does not. Part (ii) reports the
// cross-rule factoring (distinct test nodes versus R×3 naive test
// slots). Part (iii) removes rules and shows the GC shrinking the
// structures and the assert path back down. Part (iv) runs the live
// engine over ManyRulesFanout for the CI metrics artifact: the
// rete_alpha_* counters document where the speedup comes from.
func e22() {
	const churnIters = 2000
	fmt.Println("  (i) alpha assert churn (64-event pool, 3/4 cold; best of 3):")
	fmt.Printf("  %-8s %14s %14s %8s\n", "rules", "rete-linear", "rete", "ratio")
	churn := func(mk func() *pdps.ReteNetwork, nRules int) (*pdps.ReteNetwork, time.Duration) {
		n := mk()
		for _, r := range fanoutRuleSet(nRules) {
			if err := n.AddRule(r); err != nil {
				log.Fatal(err)
			}
		}
		events := fanoutPool(pdps.NewStore(), nRules)
		n.Insert(events[0])
		if n.ConflictSet().Len() != 1 {
			log.Fatal("e22(i): hot event did not match its rule")
		}
		n.Remove(events[0])
		runtime.GC()
		start := time.Now()
		for i := 0; i < churnIters; i++ {
			w := events[i%len(events)]
			n.Insert(w)
			n.Remove(w)
		}
		elapsed := time.Since(start)
		if n.ConflictSet().Len() != 0 {
			log.Fatal("e22(i): churn leaked instantiations")
		}
		return n, elapsed
	}
	for _, nRules := range []int{16, 64, 256} {
		linT, discT := time.Duration(1<<62), time.Duration(1<<62)
		for rep := 0; rep < 6; rep++ {
			// Alternate order so allocator and frequency drift cannot
			// systematically favour either side.
			if rep%2 == 0 {
				_, d := churn(pdps.NewLinearReteNetwork, nRules)
				linT = min(linT, d)
				_, d = churn(pdps.NewReteNetwork, nRules)
				discT = min(discT, d)
			} else {
				_, d := churn(pdps.NewReteNetwork, nRules)
				discT = min(discT, d)
				_, d = churn(pdps.NewLinearReteNetwork, nRules)
				linT = min(linT, d)
			}
		}
		fmt.Printf("  %-8d %14v %14v %7.2fx\n", nRules,
			linT.Round(time.Microsecond), discT.Round(time.Microsecond), float64(linT)/float64(discT))
	}

	fmt.Println("  (ii) cross-rule factoring (R rules x 3 constant tests each):")
	fmt.Printf("  %-8s %10s %12s %12s %12s\n", "rules", "alphamems", "disc-nodes", "shared", "routed-attrs")
	for _, nRules := range []int{16, 64, 256} {
		n := pdps.NewReteNetwork()
		for _, r := range fanoutRuleSet(nRules) {
			if err := n.AddRule(r); err != nil {
				log.Fatal(err)
			}
		}
		t := n.Topology()
		fmt.Printf("  %-8d %10d %12d %12d %12d\n", nRules,
			t.AlphaMems, t.AlphaDiscNodes, t.SharedAlphaNodes, t.AlphaRoutedAttrs)
	}

	fmt.Println("  (iii) rule removal GC (256 rules -> 64; churn re-measured after GC):")
	{
		n, full := churn(pdps.NewReteNetwork, 256)
		before := n.Topology()
		rules := fanoutRuleSet(256)
		for _, r := range rules[64:] {
			if err := n.RemoveRule(r.Name); err != nil {
				log.Fatal(err)
			}
		}
		after := n.Topology()
		if after.AlphaMems != 64 {
			log.Fatalf("e22(iii): %d alpha memories survive 192 rule removals, want 64", after.AlphaMems)
		}
		events := fanoutPool(pdps.NewStore(), 64)
		runtime.GC()
		start := time.Now()
		for i := 0; i < churnIters; i++ {
			w := events[i%len(events)]
			n.Insert(w)
			n.Remove(w)
		}
		shrunk := time.Since(start)
		fmt.Printf("  %-14s %12s %12s %14s\n", "", "alphamems", "disc-nodes", "churn")
		fmt.Printf("  %-14s %12d %12d %14v\n", "256 rules", before.AlphaMems, before.AlphaDiscNodes, full.Round(time.Microsecond))
		fmt.Printf("  %-14s %12d %12d %14v\n", "after GC->64", after.AlphaMems, after.AlphaDiscNodes, shrunk.Round(time.Microsecond))
	}

	// A live-engine pass over ManyRulesFanout for the CI metric
	// artifact: probes stay near one per routed attribute per event
	// while the evaluated-test counter stays flat as rules grow.
	fmt.Println("  (iv) live engine on ManyRulesFanout(256, 2048):")
	fmt.Printf("  %-12s %12s %9s %10s %12s %8s\n", "matcher", "elapsed", "firings", "probes", "tests-eval", "shared")
	for _, matcher := range []string{"rete-linear", "rete"} {
		prog := pdps.ManyRulesFanout(256, 2048)
		eng, err := pdps.NewSingleEngine(prog, pdps.Options{Matcher: matcher})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if res.Firings != 2048 {
			log.Fatalf("%s: firings = %d, want 2048", matcher, res.Firings)
		}
		snap := eng.Metrics().Snapshot()
		shared, _ := snap.Gauge("rete_alpha_shared")
		fmt.Printf("  %-12s %12v %9d %10d %12d %8d\n", matcher, elapsed.Round(time.Microsecond), res.Firings,
			snap.Counter("rete_alpha_probes_total"), snap.Counter("rete_alpha_tests_evaluated_total"), shared)
		dumpMetrics("e22", matcher, eng)
	}
}
