package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"pdps"
)

// hybridRun executes prog under the Rc/Ra/Wa dynamic engine with the
// given options, checks the trace, and returns the wall-clock median of
// trials runs together with the engine of the median run (for metric
// snapshots). Medians rather than means keep one GC pause or scheduler
// hiccup from polluting an EXPERIMENTS.md row.
func hybridRun(mk func() pdps.Program, opts pdps.Options, trials int) (time.Duration, pdps.Result, pdps.Engine) {
	type trial struct {
		elapsed time.Duration
		res     pdps.Result
		eng     pdps.Engine
	}
	var ts []trial
	for i := 0; i < trials; i++ {
		prog := mk()
		eng, err := pdps.NewParallelEngine(prog, pdps.SchemeRcRaWa, opts)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := eng.Run()
		elapsed := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
			log.Fatalf("INCONSISTENT: %v", err)
		}
		ts = append(ts, trial{elapsed, res, eng})
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].elapsed < ts[j].elapsed })
	m := ts[len(ts)/2]
	return m.elapsed, m.res, m.eng
}

// fanInProgram builds sweep rules that each join fan tuples of the
// shared class "item" (ids p*fan..p*fan+fan-1) and retire the first —
// every firing wants fan tuple-level locks in one class, the shape that
// trips the LockEscalation threshold.
func fanInProgram(parts, fan int) pdps.Program {
	var prog pdps.Program
	for p := 0; p < parts; p++ {
		r := &pdps.Rule{Name: fmt.Sprintf("sweep%d", p)}
		for j := 0; j < fan; j++ {
			r.Conditions = append(r.Conditions, pdps.Condition{
				Class: "item", Tests: []pdps.AttrTest{
					{Attr: "id", Op: pdps.OpEq, Const: pdps.Int(int64(p*fan + j))},
					{Attr: "live", Op: pdps.OpEq, Const: pdps.Bool(true)},
				},
			})
		}
		r.Actions = []pdps.Action{{Kind: pdps.ActModify, CE: 0, Assigns: []pdps.AttrAssign{
			{Attr: "live", Expr: pdps.ConstExpr{Val: pdps.Bool(false)}}}}}
		prog.Rules = append(prog.Rules, r)
		for j := 0; j < fan; j++ {
			prog.WMEs = append(prog.WMEs, pdps.InitialWME{Class: "item",
				Attrs: map[string]pdps.Value{"id": pdps.Int(int64(p*fan + j)), "live": pdps.Bool(true)}})
		}
	}
	return prog
}

// wideIndependent is Independent with a wider read set: each rule owns
// a private class of `fan` tuples, joins all of them per firing (one
// counter tuple plus fan-1 guard reads) and bumps the counter. Rules
// stay pairwise non-interfering, but the locked path now pays fan Rc
// acquires plus the Wa round-trip per firing — the share of work that
// elision removes, at a per-rule read-set width closer to real
// production systems than Independent's single condition.
func wideIndependent(rules, fan, steps int) pdps.Program {
	var prog pdps.Program
	for r := 0; r < rules; r++ {
		cls := fmt.Sprintf("cell%d", r)
		rule := &pdps.Rule{Name: fmt.Sprintf("step%d", r)}
		rule.Conditions = append(rule.Conditions, pdps.Condition{
			Class: cls, Tests: []pdps.AttrTest{
				{Attr: "id", Op: pdps.OpEq, Const: pdps.Int(0)},
				{Attr: "v", Op: pdps.OpEq, Var: "x"},
				{Attr: "v", Op: pdps.OpLt, Const: pdps.Int(int64(steps))},
			},
		})
		for j := 1; j < fan; j++ {
			rule.Conditions = append(rule.Conditions, pdps.Condition{
				Class: cls, Tests: []pdps.AttrTest{
					{Attr: "id", Op: pdps.OpEq, Const: pdps.Int(int64(j))},
				},
			})
		}
		rule.Actions = []pdps.Action{{Kind: pdps.ActModify, CE: 0, Assigns: []pdps.AttrAssign{
			{Attr: "v", Expr: pdps.BinExpr{Op: pdps.ArithAdd,
				L: pdps.VarExpr{Name: "x"}, R: pdps.ConstExpr{Val: pdps.Int(1)}}}}}}
		prog.Rules = append(prog.Rules, rule)
		for j := 0; j < fan; j++ {
			prog.WMEs = append(prog.WMEs, pdps.InitialWME{Class: cls,
				Attrs: map[string]pdps.Value{"id": pdps.Int(int64(j)), "v": pdps.Int(0)}})
		}
	}
	return prog
}

// e18 measures the hybrid consistency layer end to end (DESIGN.md §11):
// (i) the interference-driven lock-elision win on a pairwise
// non-interfering workload, (ii) the cost bound on a fully-conflicting
// workload where every firing falls back to locks, (iii) the class-lock
// escalation trade on a fan-in workload, and (iv) the group-commit
// batch sweep. Counters quoted per row come from the metrics registry
// of the median run.
func e18() {
	const trials = 5

	// (i) Elision-hot: every rule owns a private class, so the static
	// interference matrix admits the lock-free path for every firing.
	const rules, fan1, steps, np = 16, 6, 48, 8
	mkLow := func() pdps.Program { return wideIndependent(rules, fan1, steps) }
	fmt.Printf("  (i) low-conflict wideIndependent(%d,%d,%d), np=%d, median of %d:\n", rules, fan1, steps, np, trials)
	fmt.Printf("  %-22s %12s %12s %9s %9s %9s %9s\n",
		"config", "elapsed", "firings/s", "elides", "fallback", "acquires", "speedup")
	offT, offRes, offEng := hybridRun(mkLow, pdps.Options{Np: np}, trials)
	onT, onRes, onEng := hybridRun(mkLow,
		pdps.Options{Np: np, HybridElision: true}, trials)
	row := func(name string, d time.Duration, res pdps.Result, eng pdps.Engine, base time.Duration) {
		snap := eng.Metrics().Snapshot()
		fmt.Printf("  %-22s %12v %12.0f %9d %9d %9d %8.2fx\n",
			name, d.Round(time.Microsecond),
			float64(res.Firings)/d.Seconds(),
			snap.Counter("engine_elide_total"),
			snap.Counter("engine_elide_fallback_total"),
			lockAcquires(snap),
			float64(base)/float64(d))
		dumpMetrics("e18", name, eng)
	}
	row("locked", offT, offRes, offEng, offT)
	row("hybrid", onT, onRes, onEng, offT)

	// (ii) Fully conflicting: every stage rule of the pipeline
	// self-interferes (it reads and writes part.stage), and the per-rule
	// action delay keeps many parts of the same stage in flight at once,
	// so registrants see each other in the census and fall back to
	// locks. The hybrid run's extra work over the locked baseline is
	// just the census register/check; the acceptance bound is ±5%.
	const parts2, stages2 = 24, 4
	hotDelay := 200 * time.Microsecond
	mkHot := func() pdps.Program { return pdps.Pipeline(parts2, stages2) }
	hotDelays := func(prog pdps.Program) map[string]time.Duration {
		d := make(map[string]time.Duration, len(prog.Rules))
		for _, r := range prog.Rules {
			d[r.Name] = hotDelay
		}
		return d
	}
	fmt.Printf("  (ii) self-interfering Pipeline(%d,%d), action cost %v, np=%d, median of %d:\n",
		parts2, stages2, hotDelay, np, trials)
	cOffT, cOffRes, _ := hybridRun(mkHot,
		pdps.Options{Np: np, RuleDelay: hotDelays(mkHot())}, trials)
	cOnT, cOnRes, cOnEng := hybridRun(mkHot,
		pdps.Options{Np: np, HybridElision: true, RuleDelay: hotDelays(mkHot())}, trials)
	snap := cOnEng.Metrics().Snapshot()
	delta := 100 * (float64(cOnT) - float64(cOffT)) / float64(cOffT)
	fmt.Printf("  %-22s %12v  commits=%d\n", "locked", cOffT.Round(time.Microsecond), cOffRes.Firings)
	fmt.Printf("  %-22s %12v  commits=%d elides=%d fallbacks=%d delta=%+.1f%%\n",
		"hybrid", cOnT.Round(time.Microsecond), cOnRes.Firings,
		snap.Counter("engine_elide_total"), snap.Counter("engine_elide_fallback_total"), delta)

	// (iii) Escalation: each sweep rule wants `fan` tuple locks in the
	// shared item class. Above the threshold the lock manager grants one
	// class-granularity lock instead — fewer lock-table operations, but
	// class-level Wa serializes rules that tuple locks would have run in
	// parallel: the Section 4.1 granularity trade, measured.
	const parts, fan = 8, 12
	mkFan := func() pdps.Program { return fanInProgram(parts, fan) }
	fmt.Printf("  (iii) fan-in escalation (parts=%d fan=%d, np=%d):\n", parts, fan, np)
	fmt.Printf("  %-22s %12s %9s %9s %9s %9s\n", "config", "elapsed", "commits", "acquires", "escal", "saved")
	for _, esc := range []int{0, 4} {
		name := "tuple-locks"
		if esc > 0 {
			name = fmt.Sprintf("escalate>%d", esc)
		}
		d, res, eng := hybridRun(mkFan, pdps.Options{Np: np, LockEscalation: esc}, trials)
		s := eng.Metrics().Snapshot()
		fmt.Printf("  %-22s %12v %9d %9d %9d %9d\n",
			name, d.Round(time.Microsecond), res.Firings, lockAcquires(s),
			s.Counter("lock_escalation_total"), s.Counter("lock_escalation_saved_locks_total"))
		dumpMetrics("e18", name, eng)
	}

	// (iv) Group commit: one conflict-set refresh per batch instead of
	// per firing. The naive matcher rebuilds its conflict set on every
	// refresh — the O(|CS|) cost group commit exists to amortize; the
	// incremental matchers drain a per-commit journal, so for them the
	// batch size is a wash (the rete row pins that).
	fmt.Printf("  (iv) commit-batch sweep on Independent(%d,%d) with elision on:\n", rules, steps)
	mkBatch := func() pdps.Program { return pdps.Independent(rules, steps) }
	fmt.Printf("  %-22s %12s %12s %14s\n", "matcher/batch", "elapsed", "firings/s", "mean batch")
	for _, c := range []struct {
		matcher string
		batch   int
	}{{"naive", 1}, {"naive", 4}, {"naive", 16}, {"rete", 1}, {"rete", 16}} {
		d, res, eng := hybridRun(mkBatch,
			pdps.Options{Np: np, Matcher: c.matcher, HybridElision: true, CommitBatch: c.batch}, trials)
		mean := "-"
		if h, ok := eng.Metrics().Snapshot().Histogram("commit_batch_size"); ok && h.Count > 0 {
			mean = fmt.Sprintf("%.2f", float64(h.Sum)/float64(h.Count))
		}
		fmt.Printf("  %-15s/%-6d %12v %12.0f %14s\n",
			c.matcher, c.batch, d.Round(time.Microsecond), float64(res.Firings)/d.Seconds(), mean)
	}
}

// lockAcquires sums lock_acquires_total across its mode labels.
func lockAcquires(snap pdps.MetricsSnapshot) int64 {
	var n int64
	for _, c := range snap.Counters {
		if c.Name == "lock_acquires_total" {
			n += c.Value
		}
	}
	return n
}
