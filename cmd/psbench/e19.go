package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"pdps"
)

// e19 measures the durability tax and the group-commit amortization of
// the storage layer (DESIGN.md §12): the same commit-bound workload
// runs with no storage, the in-memory backend, and the file backend
// under fsync-per-commit vs growing group-commit batches. The
// acceptance bar is ≥5x throughput for batched group commit over
// fsync-per-commit on the file backend, with the no-op backend within
// noise of running without storage.
func e19() {
	const rules, steps, np = 32, 48, 32
	const trials = 5
	mkProg := func() pdps.Program { return pdps.Independent(rules, steps) }

	type row struct {
		name    string
		elapsed time.Duration
		res     pdps.Result
		fsyncs  int64
		group   string
	}

	runOnce := func(backend pdps.StorageBackend, batch int) (time.Duration, pdps.Result, pdps.Engine) {
		prog := mkProg()
		eng, err := pdps.NewParallelEngine(prog, pdps.SchemeRcRaWa, pdps.Options{
			Np: np, CommitBatch: batch, Storage: backend, HybridElision: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := eng.Run()
		elapsed := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
			log.Fatalf("INCONSISTENT: %v", err)
		}
		return elapsed, res, eng
	}

	fileBackend := func() (pdps.StorageBackend, func()) {
		dir, err := os.MkdirTemp("", "pdps-e19")
		if err != nil {
			log.Fatal(err)
		}
		b, err := pdps.OpenFileBackend(dir, pdps.FileBackendOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return b, func() {
			if err := b.Close(); err != nil {
				log.Fatal(err)
			}
			os.RemoveAll(dir)
		}
	}
	memBackend := func() (pdps.StorageBackend, func()) {
		return pdps.NewMemBackend(), func() {}
	}

	configs := []struct {
		name      string
		batch     int
		mkBackend func() (pdps.StorageBackend, func())
	}{
		{"no-storage", 64, nil},
		{"mem/flush-on-dry", 64, memBackend},
		{"file/fsync-per-commit", 1, fileBackend},
		{"file/batch-8", 8, fileBackend},
		{"file/batch-64", 64, fileBackend},
	}

	// Trials are interleaved round-robin across the configs (one trial
	// of each per round) so a drift in the host's fsync latency over
	// the sweep biases every config equally instead of skewing the
	// ratios; each file trial still gets a fresh backend and directory
	// so no trial inherits another's log.
	type trial struct {
		elapsed time.Duration
		res     pdps.Result
		eng     pdps.Engine
	}
	ts := make([][]trial, len(configs))
	for t := 0; t < trials; t++ {
		for ci, c := range configs {
			var backend pdps.StorageBackend
			cleanup := func() {}
			if c.mkBackend != nil {
				backend, cleanup = c.mkBackend()
			}
			elapsed, res, eng := runOnce(backend, c.batch)
			cleanup()
			ts[ci] = append(ts[ci], trial{elapsed, res, eng})
		}
	}

	fmt.Printf("  commit-bound Independent(%d,%d), np=%d, median of %d interleaved:\n", rules, steps, np, trials)
	rows := make([]row, len(configs))
	for ci, c := range configs {
		sort.Slice(ts[ci], func(i, j int) bool { return ts[ci][i].elapsed < ts[ci][j].elapsed })
		m := ts[ci][len(ts[ci])/2]
		snap := m.eng.Metrics().Snapshot()
		group := "-"
		if h, ok := snap.Histogram("wal_group_size"); ok && h.Count > 0 {
			group = fmt.Sprintf("%.1f", float64(h.Sum)/float64(h.Count))
		}
		dumpMetrics("e19", c.name, m.eng)
		rows[ci] = row{c.name, m.elapsed, m.res, snap.Counter("wal_fsync_total"), group}
	}
	var perCommit row
	for _, r := range rows {
		if r.name == "file/fsync-per-commit" {
			perCommit = r
		}
	}
	fmt.Printf("  %-24s %12s %12s %9s %10s %9s\n",
		"config", "elapsed", "firings/s", "fsyncs", "mean grp", "vs sync1")
	for _, r := range rows {
		fmt.Printf("  %-24s %12v %12.0f %9d %10s %8.2fx\n",
			r.name, r.elapsed.Round(time.Microsecond),
			float64(r.res.Firings)/r.elapsed.Seconds(),
			r.fsyncs, r.group,
			float64(perCommit.elapsed)/float64(r.elapsed))
	}
	fmt.Println("  (group commit amortizes the fsync across every commit that queued")
	fmt.Println("   during the previous one; the no-op backend prices the record codec)")
}
