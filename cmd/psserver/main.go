// Command psserver hosts the multi-tenant rule service: a TCP wire
// protocol serving many concurrent engine sessions, one tenant each,
// with streaming WME ingest, batched run commands, streamed commit
// traces and metrics snapshots. See docs/SERVER.md for the protocol
// and cmd/psload for the matching load driver.
//
// Usage:
//
//	psserver -addr 127.0.0.1:7007 -storage-root ./data \
//	         -queue 64 -max-sessions 1024 -metrics-http :6060
//
// The server drains gracefully on SIGINT/SIGTERM: every session is
// reaped (durable backends closed cleanly) before exit, and -metrics
// prints a final server-level snapshot.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"pdps/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7007", "listen address")
		queue       = flag.Int("queue", 64, "per-session dispatch queue depth")
		block       = flag.Bool("block", false, "block ingest on a full dispatch queue instead of shedding with an overloaded error")
		maxSessions = flag.Int("max-sessions", 1024, "admission-control bound on live sessions")
		storageRoot = flag.String("storage-root", "", "root directory for durable sessions (empty disables storage_dir requests)")
		metricsOut  = flag.Bool("metrics", false, "print the server metrics snapshot on shutdown")
		metricsHTTP = flag.String("metrics-http", "", "serve live server metrics as expvar JSON on this address (/debug/vars)")
	)
	flag.Parse()

	srv := server.New(server.Config{
		QueueDepth:  *queue,
		BlockOnFull: *block,
		MaxSessions: *maxSessions,
		StorageRoot: *storageRoot,
	})
	if err := srv.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("psserver listening on %s (queue=%d block=%v max-sessions=%d storage=%q)\n",
		srv.Addr(), *queue, *block, *maxSessions, *storageRoot)

	if *metricsHTTP != "" {
		expvar.Publish("pdps_server", srv.Metrics().Expvar())
		go func() {
			if err := http.ListenAndServe(*metricsHTTP, nil); err != nil {
				log.Printf("metrics endpoint: %v", err)
			}
		}()
		fmt.Printf("metrics: http://%s/debug/vars\n", *metricsHTTP)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("psserver: %v, draining\n", s)
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	if *metricsOut {
		srv.Metrics().Snapshot().WriteText(os.Stdout)
	}
}
