// Command psrun executes a production-system program file (.ops rule
// language) under a chosen engine, strategy and locking scheme.
//
// Usage:
//
//	psrun [flags] program.ops
//
// Flags select the engine ("single", "parallel", "static"), the lock
// scheme for the parallel engine ("2pl", "rcrawa"), the conflict
// resolution strategy, worker count, matcher and verbosity.
//
// Observability flags: -metrics prints a text dump of every metric
// series after the run; -metrics-json prints the structured snapshot
// as JSON; -metrics-http ADDR serves the live registry as
// expvar-compatible JSON on ADDR/debug/vars while the run is in
// flight. See docs/OBSERVABILITY.md for the metric catalog.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"pdps"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psrun: ")

	var (
		engineName = flag.String("engine", "single", "engine: single, parallel, static")
		scheme     = flag.String("scheme", "rcrawa", "lock scheme for parallel engine: 2pl, rcrawa")
		strategy   = flag.String("strategy", "lex", "conflict resolution: lex, mea, fifo, priority, specificity, random")
		matcher    = flag.String("matcher", "rete", "matcher: rete, treat, naive")
		shards     = flag.Int("shards", 1, "matcher shards (>1 enables intra-phase match parallelism)")
		np         = flag.Int("np", 4, "processors (workers) for parallel engines")
		maxFirings = flag.Int("max-firings", 10000, "firing safety bound")
		verify     = flag.Bool("verify", false, "verify semantic consistency at every commit")
		check      = flag.Bool("check", true, "check the trace against ES_single after the run")
		showTrace  = flag.Bool("trace", false, "print the full event trace")
		showWM     = flag.Bool("wm", false, "print the final working memory")
		dataDir    = flag.String("data", "", "durable storage directory: group-commit log every firing, recover prior state on reopen")

		showMetrics = flag.Bool("metrics", false, "print a text dump of the metrics registry after the run")
		metricsJSON = flag.Bool("metrics-json", false, "print the metrics snapshot as JSON after the run")
		metricsHTTP = flag.String("metrics-http", "", "serve live metrics as expvar JSON on this address (/debug/vars) during the run")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psrun [flags] program.ops")
		flag.PrintDefaults()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := pdps.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}

	st, err := pdps.NewStrategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	opts := pdps.Options{
		Matcher:     *matcher,
		MatchShards: *shards,
		Strategy:    st,
		Np:          *np,
		MaxFirings:  *maxFirings,
		Verify:      *verify,
	}
	// With -data, commits flow through the file storage backend: a fresh
	// directory is seeded with the program's initial working memory as a
	// non-firing record; a non-empty one restores the recovered store and
	// the program's declared WMEs are skipped (they are already durable).
	var backend *pdps.FileBackend
	var restoreBase *pdps.Store
	if *dataDir != "" {
		backend, err = pdps.OpenFileBackend(*dataDir, pdps.FileBackendOptions{})
		if err != nil {
			log.Fatal(err)
		}
		rec, err := backend.Recover()
		if err != nil {
			log.Fatal(err)
		}
		if rec.LSN == 0 {
			base := pdps.NewStore()
			var init pdps.Delta
			for _, iw := range prog.WMEs {
				init.Adds = append(init.Adds, base.Insert(iw.Class, iw.Attrs))
			}
			if len(init.Adds) > 0 {
				if _, err := backend.Append(&pdps.StorageRecord{Delta: &init}); err != nil {
					log.Fatal(err)
				}
				if err := backend.Sync(); err != nil {
					log.Fatal(err)
				}
			}
			opts.Restore = base
		} else {
			fmt.Printf("recovered %d records (LSN %d) from %s\n", len(rec.Records), rec.LSN, *dataDir)
			opts.Restore = rec.Store
		}
		prog.WMEs = nil
		restoreBase = opts.Restore.Clone()
		opts.Storage = backend
	}

	var eng pdps.Engine
	switch *engineName {
	case "single":
		eng, err = pdps.NewSingleEngine(prog, opts)
	case "parallel":
		var sch pdps.Scheme
		switch *scheme {
		case "2pl":
			sch = pdps.Scheme2PL
		case "rcrawa":
			sch = pdps.SchemeRcRaWa
		default:
			log.Fatalf("unknown scheme %q", *scheme)
		}
		eng, err = pdps.NewParallelEngine(prog, sch, opts)
	case "static":
		eng, err = pdps.NewStaticEngine(prog, opts)
	default:
		log.Fatalf("unknown engine %q", *engineName)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *metricsHTTP != "" {
		// expvar's init registers /debug/vars on the default mux; the
		// published Func snapshots the registry on every scrape, so the
		// endpoint is live while workers run.
		expvar.Publish("pdps", eng.Metrics().Expvar())
		go func() {
			if err := http.ListenAndServe(*metricsHTTP, nil); err != nil {
				log.Printf("metrics endpoint: %v", err)
			}
		}()
		fmt.Printf("metrics: http://%s/debug/vars\n", *metricsHTTP)
	}

	start := time.Now()
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("engine=%s firings=%d aborts=%d skips=%d cycles=%d halted=%v limit=%v elapsed=%v\n",
		*engineName, res.Firings, res.Aborts, res.Skips, res.Cycles,
		res.Halted, res.LimitHit, elapsed.Round(time.Microsecond))

	if *showTrace {
		for _, e := range res.Log.Events() {
			fmt.Println(e)
		}
	}
	if *showWM {
		for _, w := range eng.Store().All() {
			fmt.Println(w)
		}
	}
	if *check {
		if restoreBase != nil {
			err = pdps.CheckTraceFrom(restoreBase, prog.Rules, res.Log.Commits())
		} else {
			err = pdps.CheckTrace(prog, res.Log.Commits())
		}
		if err != nil {
			log.Fatalf("trace check FAILED: %v", err)
		}
		fmt.Println("trace check: consistent with single-thread semantics")
	}
	if *showMetrics || *metricsJSON {
		snap := eng.Metrics().Snapshot()
		if *metricsJSON {
			b, err := snap.MarshalIndent()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(string(b))
		} else {
			fmt.Print(snap.Text())
		}
	}
	if backend != nil {
		lsn := backend.LSN()
		if err := backend.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("durable storage at %s (LSN %d)\n", *dataDir, lsn)
	}
}
