package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"pdps"
)

// TestMain lets the test binary impersonate psrun: when PSRUN_MAIN is
// set, it runs main() with the remaining arguments instead of the test
// suite, so tests can exercise the real CLI end to end without a go
// build step.
func TestMain(m *testing.M) {
	if os.Getenv("PSRUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runPsrun(t *testing.T, args ...string) string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "PSRUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("psrun %v failed: %v\n%s", args, err, out)
	}
	return string(out)
}

const growProgram = `
(p grow
  (cell ^gen <g> ^alive true)
  (limit ^gen > <g>)
  -->
  (modify 1 ^gen (+ <g> 1)))
(wme limit ^gen 3)
(wme cell ^id 0 ^gen 0 ^alive true)
(wme cell ^id 1 ^gen 0 ^alive true)
`

// TestDataDirRoundTrip drives the -data flag through its full cycle:
// a first run seeds a fresh directory and logs every commit; a second
// run recovers the quiesced state and fires nothing; the directory
// itself recovers to the expected working memory.
func TestDataDirRoundTrip(t *testing.T) {
	progFile := filepath.Join(t.TempDir(), "grow.ops")
	if err := os.WriteFile(progFile, []byte(growProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(t.TempDir(), "data")

	first := runPsrun(t, "-engine", "parallel", "-data", dataDir, progFile)
	if !strings.Contains(first, "firings=6") {
		t.Fatalf("first run: want 6 firings (2 cells x 3 gens), got:\n%s", first)
	}
	if !strings.Contains(first, "trace check: consistent") {
		t.Fatalf("first run: trace check missing:\n%s", first)
	}
	if !strings.Contains(first, "durable storage at "+dataDir+" (LSN 7)") {
		t.Fatalf("first run: want LSN 7 (6 commits + seed), got:\n%s", first)
	}

	second := runPsrun(t, "-engine", "parallel", "-data", dataDir, progFile)
	if !strings.Contains(second, "recovered 7 records (LSN 7)") {
		t.Fatalf("second run: recovery banner missing:\n%s", second)
	}
	if !strings.Contains(second, "firings=0") {
		t.Fatalf("second run: recovered state must be quiescent:\n%s", second)
	}
	if !strings.Contains(second, "durable storage at "+dataDir+" (LSN 7)") {
		t.Fatalf("second run: LSN must not advance on a quiescent run:\n%s", second)
	}

	// The directory itself must recover to the final working memory:
	// both cells grown to the limit, nothing else.
	b, err := pdps.OpenFileBackend(dataDir, pdps.FileBackendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rec, err := b.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Store.Len() != 3 {
		t.Fatalf("recovered %d WMEs, want 3", rec.Store.Len())
	}
	cells := 0
	for _, w := range rec.Store.All() {
		if w.Class != "cell" {
			continue
		}
		cells++
		if g := w.Attr("gen"); g != pdps.Int(3) {
			t.Fatalf("cell not grown to limit: %v", w)
		}
	}
	if cells != 2 {
		t.Fatalf("recovered %d cells, want 2", cells)
	}
}

// TestDataDirSingleEngine runs the same cycle on the single-thread
// engine, which fsyncs per commit rather than per group.
func TestDataDirSingleEngine(t *testing.T) {
	progFile := filepath.Join(t.TempDir(), "grow.ops")
	if err := os.WriteFile(progFile, []byte(growProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(t.TempDir(), "data")
	first := runPsrun(t, "-engine", "single", "-data", dataDir, progFile)
	if !strings.Contains(first, "firings=6") {
		t.Fatalf("first run:\n%s", first)
	}
	second := runPsrun(t, "-engine", "single", "-data", dataDir, progFile)
	if !strings.Contains(second, "firings=0") || !strings.Contains(second, "recovered 7 records") {
		t.Fatalf("second run:\n%s", second)
	}
}
