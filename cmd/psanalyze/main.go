// Command psanalyze performs the paper's pre-execution (static)
// analysis on a rule program: per-rule read/write sets over
// (class, attribute) columns, the pairwise interference matrix of
// Section 4.1, a greedy partition into non-interfering groups, and the
// compiled Rete network's topology (optionally as Graphviz dot).
//
// Usage:
//
//	psanalyze [-dot] program.ops
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pdps"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psanalyze: ")
	dot := flag.Bool("dot", false, "emit the Rete network as Graphviz dot and exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psanalyze [-dot] program.ops")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := pdps.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}

	if *dot {
		net, err := pdps.CompileRete(prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(net.Dot())
		return
	}

	fmt.Printf("program: %d rules, %d initial tuples\n\n", len(prog.Rules), len(prog.WMEs))

	fmt.Println("read/write sets:")
	for _, r := range prog.Rules {
		fmt.Printf("  %-16s %s\n", r.Name, pdps.RuleRWSet(r))
	}

	fmt.Println("\ninterference matrix (X = interferes):")
	fmt.Printf("  %-16s", "")
	for _, r := range prog.Rules {
		fmt.Printf(" %-4.4s", r.Name)
	}
	fmt.Println()
	for _, a := range prog.Rules {
		fmt.Printf("  %-16s", a.Name)
		for _, b := range prog.Rules {
			mark := "."
			if pdps.Interferes(a, b) {
				mark = "X"
			}
			fmt.Printf(" %-4s", mark)
		}
		fmt.Println()
	}

	// Greedy partition into non-interfering groups — the static
	// approach's pre-execution output.
	var groups [][]string
	assigned := make(map[string]bool)
	for _, a := range prog.Rules {
		if assigned[a.Name] {
			continue
		}
		group := []string{a.Name}
		assigned[a.Name] = true
		for _, b := range prog.Rules {
			if assigned[b.Name] {
				continue
			}
			ok := true
			for _, member := range group {
				var mr *pdps.Rule
				for _, r := range prog.Rules {
					if r.Name == member {
						mr = r
						break
					}
				}
				if pdps.Interferes(mr, b) || pdps.Interferes(b, mr) {
					ok = false
					break
				}
			}
			if ok {
				group = append(group, b.Name)
				assigned[b.Name] = true
			}
		}
		groups = append(groups, group)
	}
	fmt.Println("\nnon-interfering groups (greedy):")
	for i, g := range groups {
		fmt.Printf("  group %d: %v\n", i+1, g)
	}

	net, err := pdps.CompileRete(prog)
	if err != nil {
		log.Fatal(err)
	}
	top := net.Topology()
	fmt.Printf("\nrete topology: %d alpha memories (%d shared), %d joins, %d negatives, %d beta memories, %d productions\n",
		top.AlphaMems, top.SharedAlph, top.JoinNodes, top.NegNodes, top.MemNodes, top.ProdNodes)
	fmt.Println("(re-run with -dot for the Graphviz rendering)")
}
