// Command psbenchdiff compares two `go test -bench` output files and
// prints a benchstat-style table: one row per benchmark, with the old
// and new ns/op, the delta, and any secondary metrics (firings/s,
// B/op, allocs/op) the benchmarks report. It exists so CI can attach a
// before/after comparison of the E18-tracked benchmarks to every build
// without pulling in external tooling.
//
// Usage: psbenchdiff old.txt new.txt
//
// Benchmarks appearing several times in one file (e.g. -count=5) are
// aggregated by median, which tolerates one noisy run per side. Rows
// present on only one side are listed separately. With -geomean the
// table ends with the geometric mean of the per-row ns/op ratios —
// the single number to watch across commits. The exit status is 0
// unless -fail-over N is given and the geomean regression exceeds N
// percent, or -fail-row RE / -fail-row-over N is given and any single
// row matching RE regresses by more than N percent — the per-row gate
// catches a targeted regression that a healthy geomean would hide.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// bench is one parsed benchmark result: ns/op plus secondary metrics.
type bench struct {
	nsop    []float64
	metrics map[string][]float64
}

// parseFile reads every "Benchmark..." line of a `go test -bench`
// output file. Lines that don't parse (PASS, ok, log output) are
// skipped.
func parseFile(path string) (map[string]*bench, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*bench)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Shape: Name-N iterations value unit [value unit]...
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		name = strings.TrimPrefix(name, "Benchmark")
		b := out[name]
		if b == nil {
			b = &bench{metrics: make(map[string][]float64)}
			out[name] = b
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			if fields[i+1] == "ns/op" {
				b.nsop = append(b.nsop, v)
			} else {
				b.metrics[fields[i+1]] = append(b.metrics[fields[i+1]], v)
			}
		}
	}
	return out, sc.Err()
}

// median aggregates repeated runs of one benchmark.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// fmtNs renders a ns/op figure with benchstat-like scaling.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func main() {
	geo := flag.Bool("geomean", true, "print the geometric mean of per-row ns/op ratios")
	failOver := flag.Float64("fail-over", 0, "exit 1 if the geomean regression exceeds this percentage (0 disables)")
	failRow := flag.String("fail-row", "", "regexp of benchmark names held to the -fail-row-over per-row bound")
	failRowOver := flag.Float64("fail-row-over", 10, "exit 1 if any -fail-row match regresses by more than this percentage")
	flag.Parse()
	var rowRE *regexp.Regexp
	if *failRow != "" {
		var err error
		if rowRE, err = regexp.Compile(*failRow); err != nil {
			fmt.Fprintln(os.Stderr, "psbenchdiff: bad -fail-row:", err)
			os.Exit(2)
		}
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: psbenchdiff old.txt new.txt")
		os.Exit(2)
	}
	old, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbenchdiff:", err)
		os.Exit(2)
	}
	new_, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbenchdiff:", err)
		os.Exit(2)
	}

	var names []string
	for n := range old {
		if _, ok := new_[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	w := len("name")
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	fmt.Printf("%-*s  %12s  %12s  %8s\n", w, "name", "old", "new", "delta")
	logSum, rows := 0.0, 0
	var rowFailures []string
	for _, n := range names {
		o, nw := median(old[n].nsop), median(new_[n].nsop)
		if math.IsNaN(o) || math.IsNaN(nw) || o == 0 {
			continue
		}
		delta := 100 * (nw - o) / o
		fmt.Printf("%-*s  %12s  %12s  %+7.1f%%\n", w, n, fmtNs(o), fmtNs(nw), delta)
		logSum += math.Log(nw / o)
		rows++
		if rowRE != nil && rowRE.MatchString(n) && delta > *failRowOver {
			rowFailures = append(rowFailures,
				fmt.Sprintf("%s regressed %.1f%% (bound %.1f%%)", n, delta, *failRowOver))
		}
	}
	ratio := 1.0
	if rows > 0 {
		ratio = math.Exp(logSum / float64(rows))
	}
	if *geo && rows > 0 {
		fmt.Printf("%-*s  %12s  %12s  %+7.1f%%\n", w, "geomean", "", "", 100*(ratio-1))
	}

	report := func(label string, only map[string]*bench, other map[string]*bench) {
		var miss []string
		for n := range only {
			if _, ok := other[n]; !ok {
				miss = append(miss, n)
			}
		}
		sort.Strings(miss)
		for _, n := range miss {
			fmt.Printf("%-*s  [%s only]\n", w, n, label)
		}
	}
	report("old", old, new_)
	report("new", new_, old)

	fail := false
	for _, msg := range rowFailures {
		fmt.Fprintln(os.Stderr, "psbenchdiff:", msg)
		fail = true
	}
	if *failOver > 0 && 100*(ratio-1) > *failOver {
		fmt.Fprintf(os.Stderr, "psbenchdiff: geomean regression %.1f%% exceeds %.1f%%\n",
			100*(ratio-1), *failOver)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}
