package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pdps/internal/obs"
	"pdps/internal/repl"
	"pdps/internal/server"
	"pdps/internal/wm"
)

// replProgram seeds the absorb/clear workload entirely in initial
// working memory: every event WME is absorbed into a done marker that
// a second rule clears, so a run over E events commits exactly 2E
// records and drains to an empty store.
func replProgram(events int) string {
	var b strings.Builder
	b.WriteString(`
(p absorb (event ^seq <s>) --> (remove 1) (make done ^seq <s>))
(p clear  (done ^seq <s>) --> (remove 1))
`)
	for i := 0; i < events; i++ {
		fmt.Fprintf(&b, "(wme event ^seq %d)\n", i)
	}
	return b.String()
}

// runReplBench is the E20 experiment: one replication primary streams
// a 2×events-commit run to N replay followers while reader goroutines
// serve snapshot reads off every replica; a lag sampler records the
// follower-side replication lag, and after the fleet verifies, a late
// apply-mode follower measures the checkpoint catch-up path.
func runReplBench(events, followers, readers int, seed int64, metricsOut string) {
	reg := obs.NewRegistry()
	lagSampled := reg.Histogram("repl_lag_sampled", "records")

	p, err := repl.NewPrimary(repl.PrimaryOptions{
		Program:         replProgram(events),
		Config:          repl.RunConfig{Np: 4, Seed: seed},
		CheckpointEvery: 64,
		Metrics:         reg,
	})
	if err != nil {
		log.Fatalf("psload: repl primary: %v", err)
	}
	if err := p.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	fmt.Printf("psload: repl primary on %s (%d events -> %d commits, %d replay followers, %d readers each)\n",
		p.Addr(), events, 2*events, followers, readers)

	fleet := make([]*repl.Follower, followers)
	for i := range fleet {
		fleet[i] = repl.NewFollower(repl.FollowerOptions{
			ID:      fmt.Sprintf("r%d", i+1),
			Metrics: reg,
		})
		if err := fleet[i].Connect(p.Addr().String()); err != nil {
			log.Fatalf("psload: follower %d connect: %v", i, err)
		}
		defer fleet[i].Close()
	}

	// Readers hammer every replica's snapshot view for the duration of
	// the run; a diverged or not-yet-bootstrapped replica refuses reads,
	// which counts as a miss, never as stale data.
	var reads, readMisses int64
	stop := make(chan struct{})
	var readWG sync.WaitGroup
	for _, f := range fleet {
		for r := 0; r < readers; r++ {
			readWG.Add(1)
			go func(f *repl.Follower) {
				defer readWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					err := f.View(func(s *wm.Store) { _ = s.Len() })
					if err != nil {
						atomic.AddInt64(&readMisses, 1)
					} else {
						atomic.AddInt64(&reads, 1)
					}
				}
			}(f)
		}
	}
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(500 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				for _, f := range fleet {
					lagSampled.Observe(int64(f.Lag()))
				}
			}
		}
	}()

	start := time.Now()
	out, err := p.Run()
	if err != nil {
		log.Fatalf("psload: primary run: %v", err)
	}
	runElapsed := time.Since(start)

	for i, f := range fleet {
		rep, err := f.Wait(120 * time.Second)
		if err != nil {
			log.Fatalf("psload: follower %d: %v", i, err)
		}
		if !rep.TraceChecked || rep.Fired != out.Result.Firings {
			log.Fatalf("psload: follower %d verification: %+v", i, rep)
		}
	}
	verifyElapsed := time.Since(start)
	close(stop)
	readWG.Wait()
	<-samplerDone

	// Late joiner: an apply-mode follower bootstraps from the newest
	// checkpoint and folds only the record suffix.
	catchStart := time.Now()
	late := repl.NewFollower(repl.FollowerOptions{
		ID: "late", Mode: server.ReplModeApply, Metrics: reg,
	})
	if err := late.Connect(p.Addr().String()); err != nil {
		log.Fatalf("psload: late follower connect: %v", err)
	}
	defer late.Close()
	lateRep, err := late.Wait(120 * time.Second)
	if err != nil {
		log.Fatalf("psload: late follower: %v", err)
	}
	catchElapsed := time.Since(catchStart)

	head := p.HeadLSN()
	fmt.Printf("psload: primary run %v, fleet verified byte-identical %v after start (%d records, %d choices)\n",
		runElapsed.Round(time.Millisecond), verifyElapsed.Round(time.Millisecond),
		head, len(out.Choices))
	secs := verifyElapsed.Seconds()
	totalReads := atomic.LoadInt64(&reads)
	fmt.Printf("psload: replica reads %d ok / %d refused, %.0f reads/s across %d replicas\n",
		totalReads, atomic.LoadInt64(&readMisses), float64(totalReads)/secs, followers)
	snap := reg.Snapshot()
	if pt, ok := snap.Histogram("repl_lag_sampled"); ok && pt.Count > 0 {
		fmt.Printf("psload: replication lag p50=%d p99=%d max=%d records (n=%d samples)\n",
			pt.Quantile(0.5), pt.Quantile(0.99), pt.Max, pt.Count)
	}
	lateApplied := snap.Counter("repl_records_applied_total", obs.L("follower", "late"))
	fmt.Printf("psload: late apply catch-up %v: snapshot + %d of %d records, hash %s\n",
		catchElapsed.Round(time.Millisecond), lateApplied, head, lateRep.StoreHash[:12])
	if div := snap.Counter("repl_divergence_total", obs.L("follower", "late")); div != 0 {
		log.Fatalf("psload: late follower divergence counter = %d", div)
	}

	if metricsOut != "" {
		b, err := snap.MarshalIndent()
		if err != nil {
			log.Fatal(err)
		}
		if dir := filepath.Dir(metricsOut); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
		if err := os.WriteFile(metricsOut, b, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("psload: repl metrics written to %s\n", metricsOut)
	}
}
