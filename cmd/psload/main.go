// Command psload drives the multi-tenant rule service with a
// configurable fleet of tenants and reports throughput, client-side
// latency and the server's metrics snapshot. It either targets a
// running psserver (-addr) or, with -loopback, boots an in-process
// server on 127.0.0.1:0 so a single command exercises the full wire
// path — that mode is the CI smoke test.
//
// Each tenant creates its own session with an absorb/clear program,
// streams events in batches, runs the engine to quiescence, drains
// the streamed commit trace and (with -check) verifies it is an
// admissible single-thread execution before closing.
//
// Usage:
//
//	psload -loopback -sessions 32 -events 10000 -check \
//	       -metrics-out metrics.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pdps/internal/engine"
	"pdps/internal/lang"
	"pdps/internal/obs"
	"pdps/internal/sched"
	"pdps/internal/server"
	"pdps/internal/wm"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7007", "server address (ignored with -loopback)")
		loopback   = flag.Bool("loopback", false, "boot an in-process server on 127.0.0.1:0 and drive it")
		sessions   = flag.Int("sessions", 8, "number of tenant sessions")
		events     = flag.Int("events", 4096, "total events across all sessions")
		batch      = flag.Int("batch", 8, "events per assert batch")
		runEvery   = flag.Int("run-every", 1, "run to quiescence every N batches")
		conns      = flag.Int("conns", 4, "client connections shared by the tenants")
		check      = flag.Bool("check", false, "verify each streamed commit trace is admissible (Definition 3.2)")
		metricsOut = flag.String("metrics-out", "", "write the server metrics snapshot to this file as JSON (loopback only)")

		replBench = flag.Bool("repl", false, "run the replication benchmark (E20) instead of driving a server")
		followers = flag.Int("followers", 2, "repl benchmark: replay follower count")
		readers   = flag.Int("readers", 2, "repl benchmark: reader goroutines per replica")
		seed      = flag.Int64("seed", 42, "repl benchmark: primary schedule seed")
	)
	flag.Parse()
	if *replBench {
		if *followers < 1 || *readers < 0 || *events < 1 {
			log.Fatal("psload: -followers must be positive and -readers non-negative")
		}
		runReplBench(*events, *followers, *readers, *seed, *metricsOut)
		return
	}
	if *sessions < 1 || *batch < 1 || *runEvery < 1 || *conns < 1 {
		log.Fatal("psload: -sessions, -batch, -run-every and -conns must be positive")
	}

	target := *addr
	var srv *server.Server
	if *loopback {
		srv = server.New(server.Config{
			MaxSessions: *sessions + 8,
			Clock:       sched.Immediate{},
		})
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		target = srv.Addr().String()
		fmt.Printf("psload: loopback server on %s\n", target)
	}

	clients := make([]*server.Client, *conns)
	for i := range clients {
		c, err := server.Dial(target)
		if err != nil {
			log.Fatalf("psload: dial %s: %v", target, err)
		}
		defer c.Close()
		clients[i] = c
	}

	reg := obs.NewRegistry()
	assertLat := reg.Histogram("client_assert_latency", "ns")
	runLat := reg.Histogram("client_run_latency", "ns")

	perSession := *events / *sessions
	if perSession < 1 {
		perSession = 1
	}
	fmt.Printf("psload: %d sessions x %d events (batch %d, run every %d, %d conns, check=%v)\n",
		*sessions, perSession, *batch, *runEvery, *conns, *check)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firings  int
		ingested int
		failures []error
	)
	start := time.Now()
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fired, sent, err := driveTenant(clients[i%*conns], fmt.Sprintf("t%04d", i),
				perSession, *batch, *runEvery, *check, assertLat, runLat)
			mu.Lock()
			defer mu.Unlock()
			firings += fired
			ingested += sent
			if err != nil {
				failures = append(failures, err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for _, err := range failures {
		fmt.Fprintf(os.Stderr, "psload: %v\n", err)
	}

	fmt.Printf("psload: %d events ingested, %d rule firings in %v\n", ingested, firings, elapsed.Round(time.Millisecond))
	secs := elapsed.Seconds()
	if secs > 0 {
		fmt.Printf("psload: throughput %.0f events/s, %.0f firings/s\n",
			float64(ingested)/secs, float64(firings)/secs)
	}
	snap := reg.Snapshot()
	for _, name := range []string{"client_assert_latency", "client_run_latency"} {
		if p, ok := snap.Histogram(name); ok && p.Count > 0 {
			fmt.Printf("psload: %s p50=%v p99=%v max=%v (n=%d)\n", name,
				time.Duration(p.Quantile(0.5)).Round(time.Microsecond),
				time.Duration(p.Quantile(0.99)).Round(time.Microsecond),
				time.Duration(p.Max).Round(time.Microsecond), p.Count)
		}
	}

	if srv != nil {
		ssnap := srv.Metrics().Snapshot()
		fmt.Println("psload: server metrics:")
		ssnap.WriteText(os.Stdout)
		if *metricsOut != "" {
			b, err := ssnap.MarshalIndent()
			if err != nil {
				log.Fatal(err)
			}
			if dir := filepath.Dir(*metricsOut); dir != "." {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					log.Fatal(err)
				}
			}
			if err := os.WriteFile(*metricsOut, b, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("psload: server metrics written to %s\n", *metricsOut)
		}
		if err := srv.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if len(failures) > 0 {
		log.Fatalf("psload: %d tenants failed", len(failures))
	}
}

// tenantProgram mirrors the integration suite's workload: each event
// is absorbed into a done marker that a second rule clears, so every
// event yields two commits and working memory drains to empty.
func tenantProgram(tenant string) string {
	return fmt.Sprintf(`
(p absorb (event ^tenant %s ^seq <s>) --> (remove 1) (make done ^tenant %s ^seq <s>))
(p clear  (done  ^tenant %s ^seq <s>) --> (remove 1))`, tenant, tenant, tenant)
}

// driveTenant runs one tenant's full lifecycle against the server and
// returns its firing and ingest counts.
func driveTenant(c *server.Client, tenant string, total, batch, runEvery int, check bool,
	assertLat, runLat *obs.Histogram) (fired, sent int, err error) {
	program := tenantProgram(tenant)
	id, _, _, err := c.Create(program, server.SessionOptions{})
	if err != nil {
		return 0, 0, fmt.Errorf("tenant %s create: %w", tenant, err)
	}
	var events []server.TraceEvent
	var ingested []string
	pendingRuns := 0
	runToQuiescence := func() error {
		t0 := time.Now()
		res, err := c.Run(id, 0)
		runLat.ObserveDuration(time.Since(t0))
		if err != nil {
			return fmt.Errorf("tenant %s run: %w", tenant, err)
		}
		if !res.Quiescent {
			return fmt.Errorf("tenant %s: not quiescent after %d firings", tenant, res.Fired)
		}
		fired += res.Fired
		events = append(events, res.Events...)
		pendingRuns = 0
		return nil
	}
	for seq := 0; seq < total; {
		tuples := make([]string, 0, batch)
		for k := 0; k < batch && seq < total; k++ {
			tuples = append(tuples, fmt.Sprintf("(event ^tenant %s ^seq %d)", tenant, seq))
			seq++
		}
		t0 := time.Now()
		_, err := c.Assert(id, tuples...)
		assertLat.ObserveDuration(time.Since(t0))
		if err != nil {
			if server.IsOverloaded(err) {
				// Shed under backpressure: drain the queue with a run and
				// retry the batch.
				if err := runToQuiescence(); err != nil {
					return fired, sent, err
				}
				seq -= len(tuples)
				continue
			}
			return fired, sent, fmt.Errorf("tenant %s assert: %w", tenant, err)
		}
		sent += len(tuples)
		ingested = append(ingested, tuples...)
		if pendingRuns++; pendingRuns >= runEvery {
			if err := runToQuiescence(); err != nil {
				return fired, sent, err
			}
		}
	}
	if pendingRuns > 0 {
		if err := runToQuiescence(); err != nil {
			return fired, sent, err
		}
	}
	tail, err := c.Trace(id)
	if err != nil {
		return fired, sent, fmt.Errorf("tenant %s trace: %w", tenant, err)
	}
	events = append(events, tail...)
	if check {
		if err := checkAdmissible(program, ingested, events); err != nil {
			return fired, sent, fmt.Errorf("tenant %s: streamed trace not admissible: %w", tenant, err)
		}
	}
	if err := c.CloseSession(id); err != nil {
		return fired, sent, fmt.Errorf("tenant %s close: %w", tenant, err)
	}
	return fired, sent, nil
}

// checkAdmissible replays the streamed commit subsequence against the
// single-thread semantics: base working memory is everything the
// tenant ingested, and the commits must form a valid single-thread
// execution from it (Definition 3.2).
func checkAdmissible(program string, ingested []string, events []server.TraceEvent) error {
	prog, err := lang.Parse(program)
	if err != nil {
		return err
	}
	base := wm.NewStore()
	for _, iw := range prog.WMEs {
		base.Insert(iw.Class, iw.Attrs)
	}
	for _, src := range ingested {
		iw, err := lang.ParseWME(src)
		if err != nil {
			return err
		}
		base.Insert(iw.Class, iw.Attrs)
	}
	return engine.CheckTraceFrom(base, prog.Rules, server.Commits(events))
}
