package pdps_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestExportedAPIDocumented parses pdps.go and fails for any exported
// top-level identifier that lacks a doc comment. The public facade is
// the paper's vocabulary — every exported name is expected to say what
// it is and, where apt, which part of the paper it reproduces — so doc
// coverage is enforced, not aspirational. A grouped declaration (const
// or var block, or a factored type block) may document its members
// either individually or with one comment on the group.
func TestExportedAPIDocumented(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "pdps.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if f.Doc == nil {
		t.Error("pdps.go: missing package doc comment")
	}

	var missing []string
	report := func(pos token.Pos, name string) {
		missing = append(missing, fmt.Sprintf("%s: %s", fset.Position(pos), name))
	}

	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Pos(), "func "+d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(s.Pos(), d.Tok.String()+" "+n.Name)
						}
					}
				}
			}
		}
	}
	for _, m := range missing {
		t.Errorf("undocumented exported identifier: %s", m)
	}
}
