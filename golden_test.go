package pdps_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdps"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// goldenCases are the programs whose single-thread commit traces are
// pinned: the examples/ programs (extracted to testdata/examples) and
// the integration programs. The single-thread engine is deterministic
// under a deterministic strategy, so any trace change is a semantic
// change and must be reviewed by regenerating with -update.
func goldenCases() []struct{ file, strategy string } {
	return []struct{ file, strategy string }{
		{"examples/quickstart.ops", ""},
		{"examples/diagnosis.ops", "priority"},
		{"examples/manufacturing.ops", ""},
		{"examples/persistence.ops", ""},
		{"towers.ops", ""},
		{"fibonacci.ops", ""},
		{"routing.ops", ""},
		{"escalation.ops", "priority"},
	}
}

// renderCommits flattens the commit subsequence: one line per commit,
// rule name plus the content fingerprints of the matched tuples.
func renderCommits(log *pdps.TraceLog) string {
	var b strings.Builder
	for _, ev := range log.Commits() {
		fmt.Fprintf(&b, "%s | %s\n", ev.Rule, strings.Join(ev.WMEs, ", "))
	}
	return b.String()
}

func TestGoldenTraces(t *testing.T) {
	for _, tc := range goldenCases() {
		name := strings.TrimSuffix(strings.ReplaceAll(tc.file, "/", "_"), ".ops")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := pdps.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			opts := pdps.Options{Verify: true}
			if tc.strategy != "" {
				s, err := pdps.NewStrategy(tc.strategy)
				if err != nil {
					t.Fatal(err)
				}
				opts.Strategy = s
			}
			eng, err := pdps.NewSingleEngine(prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
				t.Fatal(err)
			}
			got := renderCommits(res.Log)
			goldenPath := filepath.Join("testdata", "golden", name+".trace")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (regenerate with go test -run TestGoldenTraces -update)", err)
			}
			if got != string(want) {
				t.Fatalf("commit trace diverged from %s (regenerate with -update if intended)\n--- got ---\n%s--- want ---\n%s",
					goldenPath, got, want)
			}
		})
	}
}
