GO ?= go

.PHONY: all build test race vet metrics-check serve-smoke repl-smoke bench bench-smoke bench-compare

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# metrics-check pins the observability layer: the golden snapshot of
# the quickstart program under a replayed schedule (byte-identical
# across runs), the detsched determinism proof, and the -race hammer
# on live snapshots. Regenerate the golden file after an intentional
# metrics change with:
#   go test -run TestGoldenMetrics -update .
metrics-check:
	$(GO) test -run 'TestGoldenMetrics|TestExportedAPIDocumented|TestMetricCatalogCovers' .
	$(GO) test -run 'TestMetricsDeterministic|TestMetricsConflictCounters' ./internal/detsched
	$(GO) test -race -run 'TestSnapshotDuringParallelRun|TestSerialEngineMetrics' ./internal/engine
	$(GO) test -race ./internal/obs

# serve-smoke drives the multi-tenant rule service end to end over
# loopback sockets: 32 tenant sessions, 10k events, every streamed
# commit trace re-checked against the single-thread semantics. This is
# the CI smoke step for cmd/psserver (docs/SERVER.md).
serve-smoke:
	$(GO) build ./cmd/psserver ./cmd/psload
	$(GO) run ./cmd/psload -loopback -sessions 32 -events 10000 -check \
		-metrics-out metrics-artifacts/psload-metrics.json

# repl-smoke exercises schedule-shipping replication end to end over
# loopback: a primary streams a 1000-commit run to two replay
# followers that must verify byte-identical (store hash, metrics
# snapshot, admissible trace), then a late apply-mode follower
# bootstraps from a checkpoint. The -race suite double-covers the same
# paths; this is the CI smoke step for cmd/psrepl (docs/REPLICATION.md).
repl-smoke:
	$(GO) build ./cmd/psrepl ./cmd/psload
	$(GO) run ./cmd/psload -repl -events 500 -followers 2 -readers 1 \
		-metrics-out metrics-artifacts/psrepl-metrics.json

bench:
	$(GO) test -bench . -benchtime 1x ./...

# bench-smoke is the CI guard: one iteration of every benchmark, so a
# bench that breaks (bad firing count, matcher divergence, panic)
# fails the build even though no timing is collected. The E18 sweep
# rides along: the hybrid consistency layer's experiment must keep
# producing consistent traces under elision, escalation and batching.
# E21 likewise: the cost-based Rete experiment self-checks conflict-set
# sizes and firing counts on every shape it measures, and E22 the
# shared alpha discrimination network (match parity between the routed
# and linear networks, firing counts, GC book-keeping).
bench-smoke:
	$(GO) test -bench . -benchtime 1x ./...
	$(GO) run ./cmd/psbench -experiment e18
	$(GO) run ./cmd/psbench -experiment e21
	$(GO) run ./cmd/psbench -experiment e22

# bench-compare measures the tracked benchmarks on the working tree
# against BASE (default: merge-base with main) and prints a
# benchstat-style table via cmd/psbenchdiff. Artifacts land in
# bench-artifacts/. COUNT repeats each benchmark so psbenchdiff can
# take per-row medians. BenchmarkJoinDepth/BenchmarkChurn guard the
# Rete planner's ±5% bound on well-ordered programs (E21): the chain
# is already optimal, so the planner must keep source order and
# match the base network's time. BenchmarkAlphaFanout tracks the
# shared alpha discrimination network (E22). The rete-network
# JoinDepth/Churn rows are additionally held to a hard per-row bound:
# the alpha routing layer sits on the assert path of every join
# benchmark, so a >10% regression on either row fails the compare
# loudly even when the geomean stays healthy. (Only the rete rows are
# gated — the treat/naive rows in the same benchmarks don't run this
# code and would only contribute noise flakes.)
BASE   ?= $(shell git merge-base HEAD main 2>/dev/null || echo HEAD~1)
COUNT  ?= 5
BENCHES = BenchmarkHybridElision|BenchmarkParallelLowConflict|BenchmarkJoinDepth|BenchmarkChurn|BenchmarkAlphaFanout
bench-compare:
	mkdir -p bench-artifacts
	$(GO) test ./internal/engine/ ./internal/rete/ -run NONE -bench "$(BENCHES)" \
		-benchtime 100x -count $(COUNT) | tee bench-artifacts/new.txt
	git worktree add -f bench-artifacts/base $(BASE)
	-cd bench-artifacts/base && $(GO) test ./internal/engine/ ./internal/rete/ -run NONE \
		-bench "$(BENCHES)" -benchtime 100x -count $(COUNT) \
		| tee ../old.txt
	git worktree remove --force bench-artifacts/base
	$(GO) run ./cmd/psbenchdiff -fail-row 'JoinDepth/indexed|JoinDepth/linear|Churn/rete' -fail-row-over 10 \
		bench-artifacts/old.txt bench-artifacts/new.txt \
		> bench-artifacts/diff.txt; status=$$?; \
		cat bench-artifacts/diff.txt; exit $$status
