GO ?= go

.PHONY: all build test race vet metrics-check bench bench-smoke

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# metrics-check pins the observability layer: the golden snapshot of
# the quickstart program under a replayed schedule (byte-identical
# across runs), the detsched determinism proof, and the -race hammer
# on live snapshots. Regenerate the golden file after an intentional
# metrics change with:
#   go test -run TestGoldenMetrics -update .
metrics-check:
	$(GO) test -run 'TestGoldenMetrics|TestExportedAPIDocumented' .
	$(GO) test -run 'TestMetricsDeterministic|TestMetricsConflictCounters' ./internal/detsched
	$(GO) test -race -run 'TestSnapshotDuringParallelRun|TestSerialEngineMetrics' ./internal/engine
	$(GO) test -race ./internal/obs

bench:
	$(GO) test -bench . -benchtime 1x ./...

# bench-smoke is the CI guard: one iteration of every benchmark, so a
# bench that breaks (bad firing count, matcher divergence, panic)
# fails the build even though no timing is collected.
bench-smoke:
	$(GO) test -bench . -benchtime 1x ./...
