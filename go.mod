module pdps

go 1.22
