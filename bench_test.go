// Benchmarks regenerating the paper's tables and figures. Each bench
// corresponds to one artifact (see DESIGN.md's per-experiment index);
// benches that reproduce a speed-up figure report the measured speedup
// as a custom metric so `go test -bench` output carries the paper's
// numbers alongside Go's timing.
package pdps_test

import (
	"fmt"
	"testing"
	"time"

	"pdps"
)

// BenchmarkFig32ExecutionGraph regenerates the Section 3.3 example:
// execution-graph construction plus full ES_single enumeration (E1).
func BenchmarkFig32ExecutionGraph(b *testing.B) {
	sys := pdps.Fig32System()
	var states, seqs int
	for i := 0; i < b.N; i++ {
		g := sys.BuildGraph(16)
		all := sys.Sequences(16, false)
		states, seqs = len(g.Nodes), len(all)
	}
	b.ReportMetric(float64(states), "states")
	b.ReportMetric(float64(seqs), "sequences")
}

// BenchmarkTable41LockCompatibility evaluates the full compatibility
// matrix under both schemes (E2).
func BenchmarkTable41LockCompatibility(b *testing.B) {
	modes := []pdps.LockMode{pdps.Rc, pdps.Ra, pdps.Wa}
	sink := false
	for i := 0; i < b.N; i++ {
		for _, scheme := range []pdps.Scheme{pdps.Scheme2PL, pdps.SchemeRcRaWa} {
			for _, held := range modes {
				for _, req := range modes {
					sink = pdps.LockCompatible(scheme, held, req) || sink
				}
			}
		}
	}
	_ = sink
}

// fig43Program is the Figure 4.3 scenario: pi writes what pj's
// condition reads.
func fig43Program() pdps.Program {
	return pdps.MustParse(`
(p pi
  (q ^hot true)
  -->
  (modify 1 ^hot false))
(p pj
  (q ^hot true)
  (out ^n <n>)
  -->
  (modify 2 ^n (+ <n> 1)))
(wme q ^hot true)
(wme out ^n 0)
`)
}

// BenchmarkFig43CommitAbortProtocol runs the writer-commits-first
// interleaving: pj becomes the Rc victim (E3).
func BenchmarkFig43CommitAbortProtocol(b *testing.B) {
	aborts := 0
	for i := 0; i < b.N; i++ {
		prog := fig43Program()
		eng, err := pdps.NewParallelEngine(prog, pdps.SchemeRcRaWa, pdps.Options{
			Np:        2,
			CondDelay: map[string]time.Duration{"pj": 2 * time.Millisecond},
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		aborts += res.Aborts
		if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(aborts)/float64(b.N), "aborts/run")
}

// BenchmarkFig44CircularConflict runs the circular Rc/Wa dependency
// under both schemes; exactly one production commits (E4).
func BenchmarkFig44CircularConflict(b *testing.B) {
	src := `
(p pi
  (q ^hot true)
  (r ^hot true)
  -->
  (modify 2 ^hot false))
(p pj
  (r ^hot true)
  (q ^hot true)
  -->
  (modify 2 ^hot false))
(wme q ^hot true)
(wme r ^hot true)
`
	for _, scheme := range []pdps.Scheme{pdps.Scheme2PL, pdps.SchemeRcRaWa} {
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog := pdps.MustParse(src)
				eng, err := pdps.NewParallelEngine(prog, scheme, pdps.Options{
					Np:        2,
					CondDelay: map[string]time.Duration{"pi": time.Millisecond, "pj": time.Millisecond},
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := eng.Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.Firings != 1 {
					b.Fatalf("firings = %d, want 1", res.Firings)
				}
			}
		})
	}
}

// benchFig runs a Section 5 figure on the simulator and reports the
// paper's metrics (E5–E8).
func benchFig(b *testing.B, sys *pdps.System, np, wantSingle, wantMulti int) {
	b.Helper()
	var res pdps.SimResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = pdps.Simulate(sys, pdps.SimConfig{Np: np})
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.TSingle != wantSingle || res.TMulti != wantMulti {
		b.Fatalf("T_single/T_multi = %d/%d, want %d/%d", res.TSingle, res.TMulti, wantSingle, wantMulti)
	}
	b.ReportMetric(float64(res.TSingle), "T_single")
	b.ReportMetric(float64(res.TMulti), "T_multi")
	b.ReportMetric(res.Speedup(), "speedup")
}

// BenchmarkFig51BaseSpeedup reproduces Figure 5.1 (speedup 2.25).
func BenchmarkFig51BaseSpeedup(b *testing.B) {
	benchFig(b, pdps.Fig51System(), 4, 9, 4)
}

// BenchmarkFig52ConflictDegree reproduces Figure 5.2 (speedup 1.67).
func BenchmarkFig52ConflictDegree(b *testing.B) {
	benchFig(b, pdps.Fig52System(), 4, 5, 3)
}

// BenchmarkFig53ExecTimeVariation reproduces Figure 5.3 (speedup 2.5).
func BenchmarkFig53ExecTimeVariation(b *testing.B) {
	benchFig(b, pdps.Fig53System(), 4, 10, 4)
}

// BenchmarkFig54ProcessorVariation reproduces Figure 5.4 (speedup 1.5).
func BenchmarkFig54ProcessorVariation(b *testing.B) {
	benchFig(b, pdps.Fig51System(), pdps.Fig54Np(), 9, 6)
}

// BenchmarkExample51Uniprocessor evaluates the uniprocessor inequality
// of Example 5.1 across abort fractions (E9).
func BenchmarkExample51Uniprocessor(b *testing.B) {
	sys := pdps.Fig51System()
	worst := 0.0
	for i := 0; i < b.N; i++ {
		res, err := pdps.Simulate(sys, pdps.SimConfig{Np: 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range []float64{0, 0.25, 0.5, 0.75, 0.99} {
			tm := res.UniprocessorMultiTime(f)
			if tm < float64(res.TSingle) {
				b.Fatalf("f=%v: multi-thread beat single-thread on a uniprocessor", f)
			}
			if tm > worst {
				worst = tm
			}
		}
	}
	b.ReportMetric(worst, "worst_T_multi_uni")
}

// BenchmarkTheorem1StaticConsistency runs randomized programs on the
// static engine and validates every trace (E10).
func BenchmarkTheorem1StaticConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog := pdps.RandomProgram(int64(i), 4, 16)
		eng, err := pdps.NewStaticEngine(prog, pdps.Options{Np: 4})
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem2DynamicConsistency runs the high-conflict workload
// under both lock schemes and validates every trace (E11).
func BenchmarkTheorem2DynamicConsistency(b *testing.B) {
	for _, scheme := range []pdps.Scheme{pdps.Scheme2PL, pdps.SchemeRcRaWa} {
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog := pdps.SharedCounter(4, 3)
				eng, err := pdps.NewParallelEngine(prog, scheme, pdps.Options{Np: 4})
				if err != nil {
					b.Fatal(err)
				}
				res, err := eng.Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.Firings != 12 {
					b.Fatalf("firings = %d, want 12", res.Firings)
				}
				if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLockSchemeAblation times the engines on the same pipeline
// workload with a fixed per-firing action cost, the Section 4.3
// claim that liberal Rc locks buy wall-clock time (E12).
func BenchmarkLockSchemeAblation(b *testing.B) {
	const parts, stages, np = 8, 3, 8
	cost := 500 * time.Microsecond
	delays := func(p pdps.Program) map[string]time.Duration {
		d := make(map[string]time.Duration)
		for _, r := range p.Rules {
			d[r.Name] = cost
		}
		return d
	}
	run := func(b *testing.B, mk func(pdps.Program) (pdps.Engine, error)) {
		for i := 0; i < b.N; i++ {
			prog := pdps.Pipeline(parts, stages)
			eng, err := mk(prog)
			if err != nil {
				b.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				b.Fatal(err)
			}
			if res.Firings != parts*stages {
				b.Fatalf("firings = %d", res.Firings)
			}
		}
	}
	b.Run("single", func(b *testing.B) {
		run(b, func(p pdps.Program) (pdps.Engine, error) {
			return pdps.NewSingleEngine(p, pdps.Options{RuleDelay: delays(p)})
		})
	})
	b.Run("parallel-2pl", func(b *testing.B) {
		run(b, func(p pdps.Program) (pdps.Engine, error) {
			return pdps.NewParallelEngine(p, pdps.Scheme2PL, pdps.Options{Np: np, RuleDelay: delays(p)})
		})
	})
	b.Run("parallel-rcrawa", func(b *testing.B) {
		run(b, func(p pdps.Program) (pdps.Engine, error) {
			return pdps.NewParallelEngine(p, pdps.SchemeRcRaWa, pdps.Options{Np: np, RuleDelay: delays(p)})
		})
	})
	b.Run("static", func(b *testing.B) {
		run(b, func(p pdps.Program) (pdps.Engine, error) {
			return pdps.NewStaticEngine(p, pdps.Options{Np: np, RuleDelay: delays(p)})
		})
	})
}

// BenchmarkSpeedupFactorSweeps sweeps the three Section 5 factors on
// the simulator and reports each point's speedup (E13).
func BenchmarkSpeedupFactorSweeps(b *testing.B) {
	for _, degree := range []int{0, 2, 8} {
		b.Run(fmt.Sprintf("conflict=%d", degree), func(b *testing.B) {
			sys := pdps.ConflictChain(12, degree, 3)
			var s float64
			for i := 0; i < b.N; i++ {
				res, err := pdps.Simulate(sys, pdps.SimConfig{Np: 12})
				if err != nil {
					b.Fatal(err)
				}
				s = res.Speedup()
			}
			b.ReportMetric(s, "speedup")
		})
	}
	for _, np := range []int{1, 4, 12} {
		b.Run(fmt.Sprintf("np=%d", np), func(b *testing.B) {
			sys := pdps.ConflictChain(12, 0, 3)
			var s float64
			for i := 0; i < b.N; i++ {
				res, err := pdps.Simulate(sys, pdps.SimConfig{Np: np})
				if err != nil {
					b.Fatal(err)
				}
				s = res.Speedup()
			}
			b.ReportMetric(s, "speedup")
		})
	}
}

// BenchmarkMatchRETEvsTREAT times the match phase via full runs of the
// same program under each matcher (E14); "rete-linear" is the
// unindexed pre-index baseline kept for the E17 comparison.
func BenchmarkMatchRETEvsTREAT(b *testing.B) {
	for _, matcher := range []string{"rete", "rete-linear", "treat", "naive"} {
		b.Run(matcher, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := pdps.NewSingleEngine(pdps.Pipeline(60, 5), pdps.Options{Matcher: matcher})
				if err != nil {
					b.Fatal(err)
				}
				res, err := eng.Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.Firings != 300 {
					b.Fatalf("firings = %d", res.Firings)
				}
			}
		})
	}
}
