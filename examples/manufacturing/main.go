// Manufacturing: a process-control workload — the class of database
// application the paper's introduction motivates. Lots of parts flow
// through inspection, machining and packing stations while a shared
// throughput gauge is maintained; the dynamic parallel engine fires
// independent part transitions concurrently under the Rc/Ra/Wa scheme
// and serialises the gauge updates through commit-time conflict
// handling.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"pdps"
)

const rules = `
; Raw parts within the gate's weight band go to machining.
(p inspect
  (part ^state raw ^weight <w>)
  (gate ^min <= <w> ^max >= <w>)
  -->
  (modify 1 ^state machining))

; Underweight and overweight parts are scrapped.
(p reject-light
  (part ^state raw ^weight <w>)
  (gate ^min > <w>)
  -->
  (modify 1 ^state scrap))

(p reject-heavy
  (part ^state raw ^weight <w>)
  (gate ^max < <w>)
  -->
  (modify 1 ^state scrap))

(p machine
  (part ^state machining)
  -->
  (modify 1 ^state packing))

(p pack
  (part ^state packing)
  (throughput ^done <d>)
  -->
  (remove 1)
  (modify 2 ^done (+ <d> 1)))

(p sweep-scrap
  (part ^state scrap)
  -->
  (remove 1))

(wme gate ^min 2 ^max 10)
(wme throughput ^done 0)
`

func main() {
	parts := flag.Int("parts", 40, "number of parts")
	np := flag.Int("np", 4, "worker (processor) count")
	flag.Parse()

	prog, err := pdps.Parse(rules)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *parts; i++ {
		prog.WMEs = append(prog.WMEs, pdps.InitialWME{
			Class: "part",
			Attrs: map[string]pdps.Value{
				"id":     pdps.Int(int64(i)),
				"state":  pdps.Sym("raw"),
				"weight": pdps.Int(int64(1 + i%12)),
			},
		})
	}

	eng, err := pdps.NewParallelEngine(prog, pdps.SchemeRcRaWa, pdps.Options{Np: *np})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("parts=%d workers=%d scheme=rcrawa\n", *parts, *np)
	fmt.Printf("commits=%d aborts=%d stale-skips=%d in %v\n",
		res.Firings, res.Aborts, res.Skips, elapsed.Round(time.Millisecond))
	gauge := eng.Store().ByClass("throughput")
	fmt.Printf("throughput gauge: %s\n", gauge[0])
	fmt.Printf("remaining parts in working memory: %d\n", len(eng.Store().ByClass("part")))

	if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("trace verified: consistent with single-thread semantics")
}
