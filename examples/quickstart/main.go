// Quickstart: parse a tiny rule program, run it on the single-thread
// engine, and inspect the trace and final working memory.
package main

import (
	"fmt"
	"log"

	"pdps"
)

const program = `
; Greet everyone, then clean up the greetings.
(p greet
  (person ^name <n>)
  -(greeted ^name <n>)
  -->
  (make greeted ^name <n>))

(p done
  (person ^name <n>)
  (greeted ^name <n>)
  -->
  (remove 1)
  (remove 2))

(wme person ^name ada)
(wme person ^name grace)
(wme person ^name barbara)
`

func main() {
	prog, err := pdps.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := pdps.NewSingleEngine(prog, pdps.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fired %d productions in %d cycles\n", res.Firings, res.Cycles)
	fmt.Println("commit sequence:")
	for _, e := range res.Log.Commits() {
		fmt.Printf("  %2d. %-8s %v\n", e.Seq, e.Rule, e.WMEs)
	}
	fmt.Printf("final working memory: %d tuples\n", eng.Store().Len())

	// The commit sequence is provably a valid single-thread execution.
	if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("trace verified: consistent with single-thread semantics")
}
