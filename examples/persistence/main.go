// Persistence: the "knowledge persistence" half of the paper's
// motivation for database production systems. A parallel run appends
// every committed firing to a durable storage backend under
// group-commit fsync; the program then throws the in-memory state
// away, recovers the working memory and the commit history from the
// backend, proves the recovered store is identical and the recovered
// trace admissible — then resumes rule execution on the recovered
// state.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"pdps"
)

const rules = `
(p grow
  (cell ^gen <g> ^alive true)
  (limit ^gen > <g>)
  -->
  (modify 1 ^gen (+ <g> 1)))

(p retire
  (cell ^gen <g> ^alive true)
  (limit ^gen <g>)
  -->
  (modify 1 ^alive false))
`

func main() {
	prog, err := pdps.Parse(rules)
	if err != nil {
		log.Fatal(err)
	}
	prog.WMEs = append(prog.WMEs, pdps.InitialWME{
		Class: "limit", Attrs: map[string]pdps.Value{"gen": pdps.Int(5)},
	})
	for i := 0; i < 6; i++ {
		prog.WMEs = append(prog.WMEs, pdps.InitialWME{
			Class: "cell",
			Attrs: map[string]pdps.Value{
				"id": pdps.Int(int64(i)), "gen": pdps.Int(0), "alive": pdps.Bool(true),
			},
		})
	}

	dir, err := os.MkdirTemp("", "pdps-persistence")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	backend, err := pdps.OpenFileBackend(dir, pdps.FileBackendOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Seed the backend with the initial working memory as a non-firing
	// record, so recovery replays onto an empty base.
	base := pdps.NewStore()
	var init pdps.Delta
	for _, iw := range prog.WMEs {
		init.Adds = append(init.Adds, base.Insert(iw.Class, iw.Attrs))
	}
	if _, err := backend.Append(&pdps.StorageRecord{Delta: &init}); err != nil {
		log.Fatal(err)
	}
	if err := backend.Sync(); err != nil {
		log.Fatal(err)
	}
	checkBase := base.Clone()

	// Run in parallel; every commit is acknowledged only after its
	// record reaches disk (group-commit fsync).
	run := prog
	run.WMEs = nil // the backend already carries the initial WM
	eng, err := pdps.NewParallelEngine(run, pdps.SchemeRcRaWa, pdps.Options{
		Np: 4, Storage: backend, Restore: base,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	lsn := backend.LSN()
	if err := backend.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran to quiescence: %d commits, %d durable records\n", res.Firings, lsn)

	// "Crash": all we keep is the directory. Recover.
	reopened, err := pdps.OpenFileBackend(dir, pdps.FileBackendOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	rec, err := reopened.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d records (LSN %d)\n", len(rec.Records), rec.LSN)

	same := rec.Store.Len() == eng.Store().Len()
	for _, w := range eng.Store().All() {
		got, ok := rec.Store.Get(w.ID)
		if !ok || !got.EqualContent(w) {
			same = false
			break
		}
	}
	fmt.Printf("recovered state identical to live state: %v\n", same)
	if !same {
		log.Fatal("recovery mismatch")
	}

	// The records also carry the firing history; check it is an
	// admissible single-thread execution from the seeded base.
	var commits []pdps.TraceEvent
	for _, r := range rec.Records {
		if r.Rule == "" {
			continue
		}
		commits = append(commits, pdps.TraceEvent{Kind: pdps.TraceCommit, Rule: r.Rule, Inst: r.Inst, WMEs: r.WMEs})
	}
	if err := pdps.CheckTraceFrom(checkBase, prog.Rules, commits); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered trace of %d firings is admissible\n", len(commits))

	// Resume rule processing on the recovered store: the retired cells
	// stay retired and nothing regrows, so the system is quiescent.
	sess, err := pdps.NewSession(pdps.Program{Rules: prog.Rules}, pdps.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.LoadSnapshot(serialize(rec.Store)); err != nil {
		log.Fatal(err)
	}
	fired, err := sess.Run(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed on recovered state: %d further firings (quiescent: %v)\n", fired, fired == 0)
}

func serialize(s *pdps.Store) *bytes.Reader {
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		log.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}
