// Persistence: the "knowledge persistence" half of the paper's
// motivation for database production systems. A parallel run logs
// every committed delta to a write-ahead log; the program then crashes
// the in-memory state away, recovers a store from the initial snapshot
// plus the log, and proves the recovered working memory is identical —
// then resumes rule execution on the recovered state.
package main

import (
	"bytes"
	"fmt"
	"log"

	"pdps"
)

const rules = `
(p grow
  (cell ^gen <g> ^alive true)
  (limit ^gen > <g>)
  -->
  (modify 1 ^gen (+ <g> 1)))

(p retire
  (cell ^gen <g> ^alive true)
  (limit ^gen <g>)
  -->
  (modify 1 ^alive false))
`

func main() {
	prog, err := pdps.Parse(rules)
	if err != nil {
		log.Fatal(err)
	}
	prog.WMEs = append(prog.WMEs, pdps.InitialWME{
		Class: "limit", Attrs: map[string]pdps.Value{"gen": pdps.Int(5)},
	})
	for i := 0; i < 6; i++ {
		prog.WMEs = append(prog.WMEs, pdps.InitialWME{
			Class: "cell",
			Attrs: map[string]pdps.Value{
				"id": pdps.Int(int64(i)), "gen": pdps.Int(0), "alive": pdps.Bool(true),
			},
		})
	}

	// Snapshot the initial state (what a DBMS would have on disk).
	base := func() *pdps.Store {
		s, err := pdps.NewSession(prog, pdps.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return s.Store()
	}()
	var snapshot bytes.Buffer
	if err := base.WriteSnapshot(&snapshot); err != nil {
		log.Fatal(err)
	}

	// Run in parallel with write-ahead logging.
	var logBuf bytes.Buffer
	wal, err := pdps.NewWAL(&logBuf)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := pdps.NewParallelEngine(prog, pdps.SchemeRcRaWa, pdps.Options{Np: 4, WAL: wal})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran to quiescence: %d commits, %d WAL records (%d bytes)\n",
		res.Firings, wal.Records(), logBuf.Len())

	// "Crash": all we keep is the snapshot and the log. Recover.
	recovered, err := pdps.ReadSnapshot(bytes.NewReader(snapshot.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	applied, err := pdps.ReplayWAL(bytes.NewReader(logBuf.Bytes()), recovered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered by replaying %d log records\n", applied)

	same := recovered.Len() == eng.Store().Len()
	for _, w := range eng.Store().All() {
		got, ok := recovered.Get(w.ID)
		if !ok || !got.EqualContent(w) {
			same = false
			break
		}
	}
	fmt.Printf("recovered state identical to live state: %v\n", same)
	if !same {
		log.Fatal("recovery mismatch")
	}

	// Resume rule processing on the recovered store: raise the limit
	// and watch the retired cells stay retired while nothing regrows.
	sess, err := pdps.NewSession(pdps.Program{Rules: prog.Rules}, pdps.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.LoadSnapshot(serialize(recovered)); err != nil {
		log.Fatal(err)
	}
	fired, err := sess.Run(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed on recovered state: %d further firings (quiescent: %v)\n", fired, fired == 0)
}

func serialize(s *pdps.Store) *bytes.Reader {
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		log.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}
