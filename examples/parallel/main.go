// Parallel: runs one workload under every execution mechanism the
// paper defines — single-thread, dynamic parallel under conventional
// 2PL, dynamic parallel under the improved Rc/Ra/Wa scheme, and the
// static interference-partition engine — then validates every commit
// sequence against the single-thread execution semantics (Definition
// 3.2) and prints the lock-manager activity that distinguishes the
// two dynamic schemes.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"pdps"
)

func main() {
	parts := flag.Int("parts", 24, "parts in the workload")
	stages := flag.Int("stages", 4, "pipeline stages")
	np := flag.Int("np", 4, "worker count for parallel engines")
	conflict := flag.Bool("conflict", true, "use the high-conflict shared-counter variant")
	flag.Parse()

	mkProg := func() pdps.Program {
		if *conflict {
			return pdps.SharedCounter(*parts, *stages)
		}
		return pdps.Pipeline(*parts, *stages)
	}

	type row struct {
		name    string
		firings int
		aborts  int
		skips   int
		elapsed time.Duration
	}
	var rows []row

	run := func(name string, eng pdps.Engine, prog pdps.Program) {
		start := time.Now()
		res, err := eng.Run()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		elapsed := time.Since(start)
		if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
			log.Fatalf("%s: INCONSISTENT TRACE: %v", name, err)
		}
		rows = append(rows, row{name, res.Firings, res.Aborts, res.Skips, elapsed})
	}

	prog := mkProg()
	single, err := pdps.NewSingleEngine(prog, pdps.Options{})
	if err != nil {
		log.Fatal(err)
	}
	run("single-thread", single, prog)

	prog = mkProg()
	p2pl, err := pdps.NewParallelEngine(prog, pdps.Scheme2PL, pdps.Options{Np: *np})
	if err != nil {
		log.Fatal(err)
	}
	run("parallel-2pl", p2pl, prog)

	prog = mkProg()
	prcw, err := pdps.NewParallelEngine(prog, pdps.SchemeRcRaWa, pdps.Options{Np: *np})
	if err != nil {
		log.Fatal(err)
	}
	run("parallel-rcrawa", prcw, prog)

	prog = mkProg()
	static, err := pdps.NewStaticEngine(prog, pdps.Options{Np: *np})
	if err != nil {
		log.Fatal(err)
	}
	run("static-partition", static, prog)

	fmt.Printf("workload: parts=%d stages=%d np=%d conflict=%v\n\n",
		*parts, *stages, *np, *conflict)
	fmt.Printf("%-18s %8s %8s %8s %12s\n", "engine", "commits", "aborts", "skips", "elapsed")
	for _, r := range rows {
		fmt.Printf("%-18s %8d %8d %8d %12v\n",
			r.name, r.firings, r.aborts, r.skips, r.elapsed.Round(time.Microsecond))
	}
	fmt.Println("\nevery commit sequence verified against ES_single (Definition 3.2)")
}
