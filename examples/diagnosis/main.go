// Diagnosis: an expert-system style rule set (the AI half of the
// paper's motivation) that classifies machine fault reports using
// priorities and negated conditions. Runs the same
// knowledge base on the single-thread and the static-partition
// parallel engine and shows that both reach the same conclusions.
package main

import (
	"fmt"
	"log"

	"pdps"
)

const kb = `
; Severe faults: temperature plus vibration on the same machine.
(p severe :priority 10
  (reading ^machine <m> ^kind temp ^value >= 90)
  (reading ^machine <m> ^kind vibration ^value >= 7)
  -(diagnosis ^machine <m>)
  -->
  (make diagnosis ^machine <m> ^fault bearing-failure ^severity critical))

; High temperature alone suggests coolant problems.
(p hot :priority 5
  (reading ^machine <m> ^kind temp ^value >= 90)
  -(diagnosis ^machine <m>)
  -->
  (make diagnosis ^machine <m> ^fault coolant ^severity major))

; Anything not diagnosed after the specific rules is healthy.
(p healthy :priority 1
  (machine ^id <m>)
  -(diagnosis ^machine <m>)
  -->
  (make diagnosis ^machine <m> ^fault none ^severity ok))
`

func main() {
	prog, err := pdps.Parse(kb)
	if err != nil {
		log.Fatal(err)
	}
	// Three machines: one severe, one hot, one healthy.
	prog.WMEs = []pdps.InitialWME{
		{Class: "machine", Attrs: map[string]pdps.Value{"id": pdps.Int(1)}},
		{Class: "machine", Attrs: map[string]pdps.Value{"id": pdps.Int(2)}},
		{Class: "machine", Attrs: map[string]pdps.Value{"id": pdps.Int(3)}},
		{Class: "reading", Attrs: map[string]pdps.Value{
			"machine": pdps.Int(1), "kind": pdps.Sym("temp"), "value": pdps.Int(95)}},
		{Class: "reading", Attrs: map[string]pdps.Value{
			"machine": pdps.Int(1), "kind": pdps.Sym("vibration"), "value": pdps.Int(9)}},
		{Class: "reading", Attrs: map[string]pdps.Value{
			"machine": pdps.Int(2), "kind": pdps.Sym("temp"), "value": pdps.Int(92)}},
		{Class: "reading", Attrs: map[string]pdps.Value{
			"machine": pdps.Int(3), "kind": pdps.Sym("temp"), "value": pdps.Int(40)}},
	}

	strategy, err := pdps.NewStrategy("priority")
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, eng pdps.Engine) {
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s engine: %d firings ---\n", name, res.Firings)
		for _, d := range eng.Store().ByClass("diagnosis") {
			fmt.Printf("  machine %v: fault=%v severity=%v\n",
				d.Attr("machine"), d.Attr("fault"), d.Attr("severity"))
		}
		if err := pdps.CheckTrace(prog, res.Log.Commits()); err != nil {
			log.Fatal(err)
		}
	}

	single, err := pdps.NewSingleEngine(prog, pdps.Options{Strategy: strategy})
	if err != nil {
		log.Fatal(err)
	}
	run("single-thread", single)

	static, err := pdps.NewStaticEngine(prog, pdps.Options{Strategy: strategy, Np: 4})
	if err != nil {
		log.Fatal(err)
	}
	run("static-parallel", static)
}
