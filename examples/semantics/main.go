// Semantics: explores the paper's formal model (Section 3) on the
// reconstructed Section 3.3 example — builds the execution graph of
// Figure 3.2, enumerates ES_single, demonstrates the consistency
// condition on valid and invalid sequences, and ties Section 5 back to
// Section 3 by validating a simulator-derived commit sequence.
package main

import (
	"fmt"
	"log"
	"strings"

	"pdps"
)

func main() {
	sys := pdps.Fig32System()
	fmt.Printf("abstract system: %d productions, initial conflict set {%s}\n",
		len(sys.Productions()), strings.Join(sys.Initial(), ","))

	// The execution graph of Figure 3.1/3.2.
	g := sys.BuildGraph(16)
	fmt.Printf("execution graph: %d states, complete=%v\n", len(g.Nodes), !g.Truncated)

	// ES_single: all completed executions.
	done := sys.CompletedSequences(16)
	fmt.Printf("completed execution sequences: %d, e.g.\n", len(done))
	for _, seq := range done[:3] {
		fmt.Printf("  %s\n", strings.Join(seq, " "))
	}

	// Definition 3.2 in action.
	valid := []string{"P3", "P2", "P5"}
	invalid := []string{"P1", "P2"} // P1's firing deletes P2
	fmt.Printf("sequence %v valid: %v\n", valid, sys.IsValidSequence(valid))
	fmt.Printf("sequence %v valid: %v (%v)\n",
		invalid, sys.IsValidSequence(invalid), sys.ExplainInvalid(invalid))

	// Section 5 meets Section 3: whatever commit order the
	// multiprocessor simulator derives must be in ES_single.
	for np := 1; np <= 4; np++ {
		res, err := pdps.Simulate(sys, pdps.SimConfig{Np: np})
		if err != nil {
			log.Fatal(err)
		}
		ok := sys.IsValidSequence(res.Sigma())
		fmt.Printf("Np=%d: sigma=%v  T_single=%d T_multi=%d speedup=%.2f  consistent=%v\n",
			np, res.Sigma(), res.TSingle, res.TMulti, res.Speedup(), ok)
		if !ok {
			log.Fatal("simulator produced an invalid sequence")
		}
	}

	// Emit the graph for visual inspection (pipe into `dot -Tsvg`).
	fmt.Println("\nGraphviz source of the execution graph:")
	fmt.Print(g.Dot())
}
